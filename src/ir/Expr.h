//===-- ir/Expr.h - The Halide IR: expressions and statements ---*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's intermediate representation. Expressions (Expr) are pure,
/// side-effect-free values as described in paper section 2; statements (Stmt)
/// are the imperative loop nests synthesized by lowering (section 4.1).
/// Nodes are immutable, kind-tagged (LLVM-style isa/cast dispatch, no RTTI),
/// and intrusively reference counted so subtrees are shared freely.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_EXPR_H
#define HALIDE_IR_EXPR_H

#include "ir/Type.h"
#include "support/Util.h"

#include <string>
#include <vector>

namespace halide {

class IRVisitor;

/// Discriminator for every IR node type. Expr kinds first, Stmt kinds after
/// FirstStmtKind.
enum class IRNodeKind : uint8_t {
  // Expressions.
  IntImm,
  UIntImm,
  FloatImm,
  StringImm,
  Cast,
  Variable,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Min,
  Max,
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE,
  And,
  Or,
  Not,
  Select,
  Load,
  Ramp,
  Broadcast,
  Call,
  Let,
  // Statements.
  LetStmt,
  AssertStmt,
  ProducerConsumer,
  For,
  Store,
  Provide,
  Allocate,
  Realize,
  Block,
  IfThenElse,
  Evaluate,
};

constexpr IRNodeKind FirstStmtKind = IRNodeKind::LetStmt;

/// Base class of all IR nodes.
struct IRNode {
  const IRNodeKind Kind;
  /// Atomic: IR handles are copied across threads by concurrent realize()
  /// and compile() calls (see IntrusivePtr in support/Util.h).
  mutable std::atomic<int> RefCount{0};

  explicit IRNode(IRNodeKind Kind) : Kind(Kind) {}
  virtual ~IRNode() = default;
  virtual void accept(IRVisitor *Visitor) const = 0;
};

/// Base class of expression nodes; carries the value type.
struct BaseExprNode : IRNode {
  Type NodeType;
  explicit BaseExprNode(IRNodeKind Kind) : IRNode(Kind) {}
};

/// Base class of statement nodes.
struct BaseStmtNode : IRNode {
  explicit BaseStmtNode(IRNodeKind Kind) : IRNode(Kind) {}
};

/// CRTP helper injecting the static kind tag and accept() for expressions.
template <typename DerivedT> struct ExprNode : BaseExprNode {
  ExprNode() : BaseExprNode(DerivedT::StaticKind) {}
  void accept(IRVisitor *Visitor) const override;
};

/// CRTP helper injecting the static kind tag and accept() for statements.
template <typename DerivedT> struct StmtNode : BaseStmtNode {
  StmtNode() : BaseStmtNode(DerivedT::StaticKind) {}
  void accept(IRVisitor *Visitor) const override;
};

/// A reference-counted handle to an immutable expression tree. May be
/// "undefined" (null), which the compiler uses to mean "absent".
class Expr {
public:
  Expr() = default;
  Expr(const BaseExprNode *Node) : Contents(Node) {}

  /// Literal conversions used pervasively by front-end code: `x + 1`,
  /// `in(x) * 0.25f`. Integer literals become Int(32); float literals keep
  /// their natural width.
  Expr(int Value);
  Expr(float Value);
  Expr(double Value);

  bool defined() const { return static_cast<bool>(Contents); }
  const BaseExprNode *get() const { return Contents.get(); }
  const BaseExprNode *operator->() const { return Contents.get(); }
  bool sameAs(const Expr &Other) const { return Contents.sameAs(Other.Contents); }

  Type type() const {
    internal_assert(defined()) << "type() of undefined Expr";
    return Contents->NodeType;
  }

  void accept(IRVisitor *Visitor) const {
    internal_assert(defined()) << "accept() on undefined Expr";
    Contents->accept(Visitor);
  }

  /// dyn_cast-style accessor: returns the node if it is of kind T, else null.
  template <typename T> const T *as() const {
    if (Contents && Contents->Kind == T::StaticKind)
      return static_cast<const T *>(Contents.get());
    return nullptr;
  }

private:
  IntrusivePtr<const BaseExprNode> Contents;
};

/// A reference-counted handle to an immutable statement tree.
class Stmt {
public:
  Stmt() = default;
  Stmt(const BaseStmtNode *Node) : Contents(Node) {}

  bool defined() const { return static_cast<bool>(Contents); }
  const BaseStmtNode *get() const { return Contents.get(); }
  const BaseStmtNode *operator->() const { return Contents.get(); }
  bool sameAs(const Stmt &Other) const { return Contents.sameAs(Other.Contents); }

  void accept(IRVisitor *Visitor) const {
    internal_assert(defined()) << "accept() on undefined Stmt";
    Contents->accept(Visitor);
  }

  template <typename T> const T *as() const {
    if (Contents && Contents->Kind == T::StaticKind)
      return static_cast<const T *>(Contents.get());
    return nullptr;
  }

private:
  IntrusivePtr<const BaseStmtNode> Contents;
};

/// A half-open-agnostic interval [Min, Min+Extent) used by Realize bounds.
struct Range {
  Expr Min, Extent;
  Range() = default;
  Range(Expr Min, Expr Extent) : Min(Min), Extent(Extent) {}
};

using Region = std::vector<Range>;

//===----------------------------------------------------------------------===//
// Expression nodes
//===----------------------------------------------------------------------===//

/// A signed integer constant.
struct IntImm final : ExprNode<IntImm> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::IntImm;
  int64_t Value;
  static Expr make(Type T, int64_t Value);
};

/// An unsigned integer constant (also booleans, as UInt(1)).
struct UIntImm final : ExprNode<UIntImm> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::UIntImm;
  uint64_t Value;
  static Expr make(Type T, uint64_t Value);
};

/// A floating point constant.
struct FloatImm final : ExprNode<FloatImm> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::FloatImm;
  double Value;
  static Expr make(Type T, double Value);
};

/// A string constant; only used as arguments to debugging intrinsics.
struct StringImm final : ExprNode<StringImm> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::StringImm;
  std::string Value;
  static Expr make(const std::string &Value);
};

/// Reinterpreting numeric conversion between types of equal lane count.
struct Cast final : ExprNode<Cast> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Cast;
  Expr Value;
  static Expr make(Type T, Expr Value);
};

/// A named scalar value: loop variables, let bindings, pipeline parameters.
struct Variable final : ExprNode<Variable> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Variable;
  std::string Name;
  /// True for runtime scalar parameters of the pipeline (bound at call time).
  bool IsParam = false;
  static Expr make(Type T, const std::string &Name, bool IsParam = false);
};

/// Binary operator helper: all arithmetic nodes have operands A and B of the
/// node's own type.
template <typename DerivedT> struct BinaryOpNode : ExprNode<DerivedT> {
  Expr A, B;
  static Expr make(Expr A, Expr B) {
    internal_assert(A.defined() && B.defined()) << "binary op of undef";
    internal_assert(A.type() == B.type())
        << "binary op of mismatched types " << A.type().str() << " vs "
        << B.type().str();
    DerivedT *Node = new DerivedT;
    Node->NodeType = A.type();
    Node->A = A;
    Node->B = B;
    return Node;
  }
};

struct Add final : BinaryOpNode<Add> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Add;
};
struct Sub final : BinaryOpNode<Sub> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Sub;
};
struct Mul final : BinaryOpNode<Mul> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Mul;
};
/// Division. Integer division rounds toward negative infinity (Euclidean
/// with positive divisor), matching the interval analysis and both back ends.
struct Div final : BinaryOpNode<Div> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Div;
};
/// Remainder matching Div: result has the sign of the divisor.
struct Mod final : BinaryOpNode<Mod> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Mod;
};
struct Min final : BinaryOpNode<Min> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Min;
};
struct Max final : BinaryOpNode<Max> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Max;
};

/// Comparison helper: operands share a type; result is Bool with the same
/// lane count.
template <typename DerivedT> struct CmpOpNode : ExprNode<DerivedT> {
  Expr A, B;
  static Expr make(Expr A, Expr B) {
    internal_assert(A.defined() && B.defined()) << "comparison of undef";
    internal_assert(A.type() == B.type())
        << "comparison of mismatched types " << A.type().str() << " vs "
        << B.type().str();
    DerivedT *Node = new DerivedT;
    Node->NodeType = Bool(A.type().Lanes);
    Node->A = A;
    Node->B = B;
    return Node;
  }
};

struct EQ final : CmpOpNode<EQ> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::EQ;
};
struct NE final : CmpOpNode<NE> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::NE;
};
struct LT final : CmpOpNode<LT> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::LT;
};
struct LE final : CmpOpNode<LE> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::LE;
};
struct GT final : CmpOpNode<GT> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::GT;
};
struct GE final : CmpOpNode<GE> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::GE;
};

/// Logical AND of boolean operands.
struct And final : BinaryOpNode<And> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::And;
};
/// Logical OR of boolean operands.
struct Or final : BinaryOpNode<Or> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Or;
};
/// Logical negation.
struct Not final : ExprNode<Not> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Not;
  Expr A;
  static Expr make(Expr A);
};

/// Ternary select; the IR has no divergent control flow within expressions
/// (paper section 4.5), so conditionals are always selects.
struct Select final : ExprNode<Select> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Select;
  Expr Condition, TrueValue, FalseValue;
  static Expr make(Expr Condition, Expr TrueValue, Expr FalseValue);
};

/// A load from a flattened, one-dimensional buffer. Only appears after
/// storage flattening (section 4.4). A vector Index makes this a gather
/// (dense if the index is a stride-1 Ramp).
struct Load final : ExprNode<Load> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Load;
  std::string Name;
  Expr Index;
  static Expr make(Type T, const std::string &Name, Expr Index);
};

/// The vector [Base, Base+Stride, ..., Base+(Lanes-1)*Stride]. Introduced by
/// the vectorization pass; the paper's ramp(n) (section 4.5).
struct Ramp final : ExprNode<Ramp> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Ramp;
  Expr Base, Stride;
  int Lanes;
  static Expr make(Expr Base, Expr Stride, int Lanes);
};

/// A scalar value replicated across vector lanes.
struct Broadcast final : ExprNode<Broadcast> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Broadcast;
  Expr Value;
  int Lanes;
  static Expr make(Expr Value, int Lanes);
};

/// How a Call node resolves its callee.
enum class CallType : uint8_t {
  Halide,     ///< A call to another Func in the pipeline (pre-flattening).
  Image,      ///< A load from an input image (pre-flattening).
  Intrinsic,  ///< A compiler intrinsic (see Call::* name constants).
  PureExtern, ///< A pure external C function, e.g. sqrtf.
};

/// A call: to another pipeline stage, an input image, an intrinsic, or an
/// external function.
struct Call final : ExprNode<Call> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Call;
  std::string Name;
  std::vector<Expr> Args;
  CallType CallKind;
  static Expr make(Type T, const std::string &Name, std::vector<Expr> Args,
                   CallType CallKind);

  /// Intrinsic names.
  static const char *const TracePoint; ///< debug/trace hook (side effecting)
  /// Profiler stage markers injected by transforms/InjectProfiling.h when
  /// Target::Profile is set: one StringImm argument naming the stage.
  /// Side effecting (profilerEnter/Exit); value is always int32 0.
  static const char *const ProfileStageStart;
  static const char *const ProfileStageEnd;
  /// Value-tracing intrinsics injected by transforms/InjectTracing.h when
  /// Target::Trace is set (observe/TraceStream.h receives the events).
  /// TraceLoad wraps a Load in expression position — args are
  /// {StringImm(buffer), Load} and the call evaluates to the load's value
  /// (the index is evaluated exactly once, shared by the load and the
  /// event's coordinates). TraceStore *replaces* a Store in statement
  /// position — args are {StringImm(buffer), Value, Index}; the backend
  /// evaluates value then index (the untraced Store's order), performs
  /// the store, and emits the event. TraceBegin/TraceEnd bracket a
  /// buffer's realization — Begin's args are {StringImm(buffer),
  /// extent...}, End's just {StringImm(buffer)}; both are int32 0.
  static const char *const TraceLoad;
  static const char *const TraceStore;
  static const char *const TraceBegin;
  static const char *const TraceEnd;
};

/// A scoped value binding within an expression.
struct Let final : ExprNode<Let> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Let;
  std::string Name;
  Expr Value, Body;
  static Expr make(const std::string &Name, Expr Value, Expr Body);
};

//===----------------------------------------------------------------------===//
// Statement nodes
//===----------------------------------------------------------------------===//

/// A scoped value binding within a statement. Bounds inference (section 4.2)
/// injects these as preambles defining each stage's region to compute.
struct LetStmt final : StmtNode<LetStmt> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::LetStmt;
  std::string Name;
  Expr Value;
  Stmt Body;
  static Stmt make(const std::string &Name, Expr Value, Stmt Body);
};

/// Aborts pipeline execution with a message if the condition is false.
struct AssertStmt final : StmtNode<AssertStmt> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::AssertStmt;
  Expr Condition;
  std::string Message;
  static Stmt make(Expr Condition, const std::string &Message);
};

/// Marks the body as the production of (or consumption of) values of a Func;
/// used by bounds inference and the sliding window pass to locate stages.
struct ProducerConsumer final : StmtNode<ProducerConsumer> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::ProducerConsumer;
  std::string Name;
  bool IsProducer;
  Stmt Body;
  static Stmt make(const std::string &Name, bool IsProducer, Stmt Body);
};

/// Execution strategy of a synthesized loop; the schedule's domain order
/// markings (section 3.2) lower to these.
enum class ForType : uint8_t {
  Serial,
  Parallel,
  Vectorized,
  Unrolled,
  GPUBlock,  ///< Simulated-GPU grid block dimension.
  GPUThread, ///< Simulated-GPU thread dimension.
};

/// Is this loop type executed as a data-parallel grid dimension?
inline bool isParallelForType(ForType T) {
  return T == ForType::Parallel || T == ForType::GPUBlock ||
         T == ForType::GPUThread;
}

const char *forTypeName(ForType T);

/// A loop over [Min, Min+Extent). All loops stride by one (section 4.1).
struct For final : StmtNode<For> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::For;
  std::string Name;
  Expr MinExpr, Extent;
  ForType Kind;
  Stmt Body;
  static Stmt make(const std::string &Name, Expr MinExpr, Expr Extent,
                   ForType Kind, Stmt Body);
};

/// A store to a flattened, one-dimensional buffer (post section 4.4).
struct Store final : StmtNode<Store> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Store;
  std::string Name;
  Expr Value, Index;
  static Stmt make(const std::string &Name, Expr Value, Expr Index);
};

/// A multidimensional store to a Func's storage, before flattening.
struct Provide final : StmtNode<Provide> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Provide;
  std::string Name;
  Expr Value;
  std::vector<Expr> Args;
  static Stmt make(const std::string &Name, Expr Value,
                   std::vector<Expr> Args);
};

/// Allocation of a flattened buffer, scoped to Body (freed on exit).
struct Allocate final : StmtNode<Allocate> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Allocate;
  std::string Name;
  Type ElemType;
  std::vector<Expr> Extents;
  Stmt Body;
  /// True if this allocation lives in simulated-GPU shared (per-block)
  /// memory rather than heap memory.
  bool InSharedMemory = false;
  static Stmt make(const std::string &Name, Type ElemType,
                   std::vector<Expr> Extents, Stmt Body,
                   bool InSharedMemory = false);
};

/// Multidimensional allocation of a Func's storage over a region, before
/// flattening. Created by lowering at the store_at level (section 4.1);
/// bounds inference fills in the region; flattening turns it into Allocate.
struct Realize final : StmtNode<Realize> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Realize;
  std::string Name;
  Type ElemType;
  Region Bounds;
  Stmt Body;
  static Stmt make(const std::string &Name, Type ElemType, Region Bounds,
                   Stmt Body);
};

/// Sequential composition of two statements.
struct Block final : StmtNode<Block> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Block;
  Stmt First, Rest;
  static Stmt make(Stmt First, Stmt Rest);
  /// Chains a list into nested Blocks; asserts the list is non-empty.
  static Stmt make(const std::vector<Stmt> &Stmts);
};

/// Statement-level conditional. ElseCase may be undefined.
struct IfThenElse final : StmtNode<IfThenElse> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::IfThenElse;
  Expr Condition;
  Stmt ThenCase, ElseCase;
  static Stmt make(Expr Condition, Stmt ThenCase, Stmt ElseCase = Stmt());
};

/// Evaluates an expression for its side effects (tracing intrinsics).
struct Evaluate final : StmtNode<Evaluate> {
  static constexpr IRNodeKind StaticKind = IRNodeKind::Evaluate;
  Expr Value;
  static Stmt make(Expr Value);
};

} // namespace halide

#endif // HALIDE_IR_EXPR_H
