//===-- ir/Type.cpp -------------------------------------------------------==//

#include "ir/Type.h"

using namespace halide;

int64_t Type::intMin() const {
  internal_assert(isInt() || isUInt()) << "intMin of non-integer type";
  if (isUInt())
    return 0;
  if (Bits == 64)
    return INT64_MIN;
  return -(int64_t(1) << (Bits - 1));
}

int64_t Type::intMax() const {
  internal_assert(isInt() || isUInt()) << "intMax of non-integer type";
  if (isInt()) {
    if (Bits == 64)
      return INT64_MAX;
    return (int64_t(1) << (Bits - 1)) - 1;
  }
  // Unsigned: may not fit in int64 for 64-bit; callers use uintMax then.
  if (Bits >= 64)
    return INT64_MAX;
  return (int64_t(1) << Bits) - 1;
}

uint64_t Type::uintMax() const {
  internal_assert(isUInt()) << "uintMax of non-uint type";
  if (Bits == 64)
    return UINT64_MAX;
  return (uint64_t(1) << Bits) - 1;
}

bool Type::canRepresent(int64_t Value) const {
  if (isInt())
    return Value >= intMin() && Value <= intMax();
  if (isUInt())
    return Value >= 0 &&
           (Bits == 64 || uint64_t(Value) <= uintMax());
  if (isFloat())
    return Bits == 64 ? true
                      : Value == int64_t(float(Value));
  return false;
}

bool Type::canRepresent(double Value) const {
  if (!isFloat())
    return false;
  return Bits == 64 || double(float(Value)) == Value;
}

std::string Type::str() const {
  std::string Base;
  switch (Code) {
  case TypeCode::Int:
    Base = "int";
    break;
  case TypeCode::UInt:
    Base = Bits == 1 ? "bool" : "uint";
    break;
  case TypeCode::Float:
    Base = "float";
    break;
  case TypeCode::Handle:
    Base = "handle";
    break;
  }
  if (!(Code == TypeCode::UInt && Bits == 1))
    Base += std::to_string(Bits);
  if (Lanes > 1)
    Base += "x" + std::to_string(Lanes);
  return Base;
}
