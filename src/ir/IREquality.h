//===-- ir/IREquality.h - Structural comparison of IR ----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep structural equality and a total order over expressions, used by the
/// simplifier (canonical operand ordering), common subexpression elimination
/// (expression maps), and tests.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_IREQUALITY_H
#define HALIDE_IR_IREQUALITY_H

#include "ir/Expr.h"

namespace halide {

/// Three-way structural comparison defining an arbitrary but consistent
/// total order: -1 if A precedes B, 0 if structurally equal, 1 otherwise.
int compareExpr(const Expr &A, const Expr &B);

/// True if the two expressions are structurally identical (same graph shape,
/// names, constants, and types). Undefined expressions compare equal to each
/// other only.
bool equal(const Expr &A, const Expr &B);

/// True if the two statements are structurally identical.
bool equal(const Stmt &A, const Stmt &B);

/// Functor for using Expr as a key in ordered containers.
struct ExprCompare {
  bool operator()(const Expr &A, const Expr &B) const {
    return compareExpr(A, B) < 0;
  }
};

} // namespace halide

#endif // HALIDE_IR_IREQUALITY_H
