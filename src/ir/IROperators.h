//===-- ir/IROperators.h - Expression-building operators --------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator overloads and helper functions for building expressions in the
/// front-end style of paper section 2 (`blurx(x,y) = in(x-1,y) + ...`).
/// Binary operators coerce operand types with the usual promotion rules and
/// fold constants eagerly so front-end trees stay small.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_IROPERATORS_H
#define HALIDE_IR_IROPERATORS_H

#include "ir/Expr.h"

namespace halide {

/// Makes a constant of type \p T from an integer (must be representable).
Expr makeConst(Type T, int64_t Value);
/// Makes a constant of type \p T from a double (must be a float type unless
/// the value is integral).
Expr makeConst(Type T, double Value);
Expr makeZero(Type T);
Expr makeOne(Type T);
Expr makeTrue(int Lanes = 1);
Expr makeFalse(int Lanes = 1);
/// Most negative / most positive value of a type (used by interval analysis
/// for saturation).
Expr makeTypeMin(Type T);
Expr makeTypeMax(Type T);

/// If \p E is an integer constant (IntImm or UIntImm, possibly broadcast),
/// stores its value and returns true.
bool asConstInt(const Expr &E, int64_t *Value);
/// If \p E is a float constant (possibly broadcast), stores its value.
bool asConstFloat(const Expr &E, double *Value);
/// True if \p E is a constant equal to zero / one (any type).
bool isConstZero(const Expr &E);
bool isConstOne(const Expr &E);
/// True if \p E is any immediate (or broadcast of one).
bool isConst(const Expr &E);
/// True if the expression is a positive / negative constant.
bool isPositiveConst(const Expr &E);
bool isNegativeConst(const Expr &E);

/// Coerces two expressions to a common type using the promotion rules:
/// immediates adopt the other side's type when representable; float beats
/// int; wider beats narrower; signed beats unsigned at equal width; scalars
/// broadcast to vectors.
void matchTypes(Expr &A, Expr &B);

// Arithmetic. Integer division and modulus round toward negative infinity.
Expr operator+(Expr A, Expr B);
Expr operator-(Expr A, Expr B);
Expr operator-(Expr A); // negation
Expr operator*(Expr A, Expr B);
Expr operator/(Expr A, Expr B);
Expr operator%(Expr A, Expr B);

Expr &operator+=(Expr &A, Expr B);
Expr &operator-=(Expr &A, Expr B);
Expr &operator*=(Expr &A, Expr B);
Expr &operator/=(Expr &A, Expr B);

// Comparison; results are boolean (UInt(1)) expressions.
Expr operator==(Expr A, Expr B);
Expr operator!=(Expr A, Expr B);
Expr operator<(Expr A, Expr B);
Expr operator<=(Expr A, Expr B);
Expr operator>(Expr A, Expr B);
Expr operator>=(Expr A, Expr B);

// Boolean algebra (not short-circuiting; these build IR).
Expr operator&&(Expr A, Expr B);
Expr operator||(Expr A, Expr B);
Expr operator!(Expr A);

/// Elementwise minimum / maximum.
Expr min(Expr A, Expr B);
Expr max(Expr A, Expr B);
/// Clamps \p E to [Lo, Hi]. Also serves as the paper's bounds-declaration
/// operator for interval analysis (section 4.2).
Expr clamp(Expr E, Expr Lo, Expr Hi);
/// Ternary conditional expression.
Expr select(Expr Condition, Expr TrueValue, Expr FalseValue);
/// Multi-way selects, evaluated first-match-wins (sugar for nested selects).
Expr select(Expr C1, Expr V1, Expr C2, Expr V2, Expr Default);
Expr select(Expr C1, Expr V1, Expr C2, Expr V2, Expr C3, Expr V3,
            Expr Default);
/// Absolute value.
Expr abs(Expr E);

/// Explicit conversion to type \p T.
Expr cast(Type T, Expr E);
/// Explicit conversion to the Type corresponding to C++ type T.
template <typename T> Expr cast(Expr E);

/// Maps C++ arithmetic types to IR types (for cast<T> and Buffer<T>).
template <typename T> Type typeOf();
template <> inline Type typeOf<int8_t>() { return Int(8); }
template <> inline Type typeOf<int16_t>() { return Int(16); }
template <> inline Type typeOf<int32_t>() { return Int(32); }
template <> inline Type typeOf<int64_t>() { return Int(64); }
template <> inline Type typeOf<uint8_t>() { return UInt(8); }
template <> inline Type typeOf<uint16_t>() { return UInt(16); }
template <> inline Type typeOf<uint32_t>() { return UInt(32); }
template <> inline Type typeOf<uint64_t>() { return UInt(64); }
template <> inline Type typeOf<float>() { return Float(32); }
template <> inline Type typeOf<double>() { return Float(64); }
template <> inline Type typeOf<bool>() { return Bool(); }

template <typename T> Expr cast(Expr E) { return cast(typeOf<T>(), E); }

// Transcendental and rounding functions; float argument is promoted to
// Float(32) if integer. These lower to PureExtern calls resolved by both
// back ends.
Expr sqrt(Expr E);
Expr sin(Expr E);
Expr cos(Expr E);
Expr exp(Expr E);
Expr log(Expr E);
Expr pow(Expr Base, Expr Exponent);
Expr floor(Expr E);
Expr ceil(Expr E);
Expr round(Expr E);

/// Linear interpolation Zero*(1-W) + One*W, computed in float.
Expr lerp(Expr Zero, Expr One, Expr Weight);

// Integer semantics shared by constant folding, the interpreter, and the C
// backend's emitted helpers.

/// Division rounding toward negative infinity; x/0 is defined as 0.
int64_t floorDiv(int64_t A, int64_t B);
/// Remainder matching floorDiv (sign of the divisor); x%0 is 0.
int64_t floorMod(int64_t A, int64_t B);
/// Wraps a value to the representable range of an integer type
/// (two's complement truncation).
int64_t wrapToType(int64_t Value, Type T);

} // namespace halide

#endif // HALIDE_IR_IROPERATORS_H
