//===-- ir/IRPrinter.cpp ----------------------------------------------------=//

#include "ir/IRPrinter.h"

#include <ostream>
#include <sstream>

using namespace halide;

std::string halide::exprToString(const Expr &E) {
  std::ostringstream OS;
  OS << E;
  return OS.str();
}

std::string halide::stmtToString(const Stmt &S) {
  std::ostringstream OS;
  OS << S;
  return OS.str();
}

std::ostream &halide::operator<<(std::ostream &OS, const Expr &E) {
  if (!E.defined()) {
    OS << "(undefined)";
    return OS;
  }
  IRPrinter Printer(OS);
  Printer.print(E);
  return OS;
}

std::ostream &halide::operator<<(std::ostream &OS, const Stmt &S) {
  if (!S.defined()) {
    OS << "(undefined stmt)\n";
    return OS;
  }
  IRPrinter Printer(OS);
  Printer.print(S);
  return OS;
}

void IRPrinter::print(const Expr &E) { E.accept(this); }
void IRPrinter::print(const Stmt &S) { S.accept(this); }

void IRPrinter::indent() {
  for (int I = 0; I < IndentLevel; ++I)
    OS << "  ";
}

void IRPrinter::visit(const IntImm *Op) {
  if (Op->NodeType == Int(32)) {
    OS << Op->Value;
    return;
  }
  OS << "(" << Op->NodeType.str() << ")" << Op->Value;
}

void IRPrinter::visit(const UIntImm *Op) {
  if (Op->NodeType.isBool()) {
    OS << (Op->Value ? "true" : "false");
    return;
  }
  OS << "(" << Op->NodeType.str() << ")" << Op->Value;
}

void IRPrinter::visit(const FloatImm *Op) {
  OS << Op->Value << "f";
  if (Op->NodeType.Bits != 32)
    OS << Op->NodeType.Bits;
}

void IRPrinter::visit(const StringImm *Op) { OS << '"' << Op->Value << '"'; }

void IRPrinter::visit(const Cast *Op) {
  OS << Op->NodeType.str() << "(";
  print(Op->Value);
  OS << ")";
}

void IRPrinter::visit(const Variable *Op) { OS << Op->Name; }

template <typename T>
void IRPrinter::printBinary(const T *Op, const char *Symbol) {
  OS << "(";
  print(Op->A);
  OS << " " << Symbol << " ";
  print(Op->B);
  OS << ")";
}

void IRPrinter::visit(const Add *Op) { printBinary(Op, "+"); }
void IRPrinter::visit(const Sub *Op) { printBinary(Op, "-"); }
void IRPrinter::visit(const Mul *Op) { printBinary(Op, "*"); }
void IRPrinter::visit(const Div *Op) { printBinary(Op, "/"); }
void IRPrinter::visit(const Mod *Op) { printBinary(Op, "%"); }
void IRPrinter::visit(const EQ *Op) { printBinary(Op, "=="); }
void IRPrinter::visit(const NE *Op) { printBinary(Op, "!="); }
void IRPrinter::visit(const LT *Op) { printBinary(Op, "<"); }
void IRPrinter::visit(const LE *Op) { printBinary(Op, "<="); }
void IRPrinter::visit(const GT *Op) { printBinary(Op, ">"); }
void IRPrinter::visit(const GE *Op) { printBinary(Op, ">="); }
void IRPrinter::visit(const And *Op) { printBinary(Op, "&&"); }
void IRPrinter::visit(const Or *Op) { printBinary(Op, "||"); }

void IRPrinter::visit(const Min *Op) {
  OS << "min(";
  print(Op->A);
  OS << ", ";
  print(Op->B);
  OS << ")";
}

void IRPrinter::visit(const Max *Op) {
  OS << "max(";
  print(Op->A);
  OS << ", ";
  print(Op->B);
  OS << ")";
}

void IRPrinter::visit(const Not *Op) {
  OS << "!";
  print(Op->A);
}

void IRPrinter::visit(const Select *Op) {
  OS << "select(";
  print(Op->Condition);
  OS << ", ";
  print(Op->TrueValue);
  OS << ", ";
  print(Op->FalseValue);
  OS << ")";
}

void IRPrinter::visit(const Load *Op) {
  OS << Op->Name << "[";
  print(Op->Index);
  OS << "]";
}

void IRPrinter::visit(const Ramp *Op) {
  OS << "ramp(";
  print(Op->Base);
  OS << ", ";
  print(Op->Stride);
  OS << ", " << Op->Lanes << ")";
}

void IRPrinter::visit(const Broadcast *Op) {
  OS << "x" << Op->Lanes << "(";
  print(Op->Value);
  OS << ")";
}

void IRPrinter::visit(const Call *Op) {
  OS << Op->Name << "(";
  for (size_t I = 0; I < Op->Args.size(); ++I) {
    if (I > 0)
      OS << ", ";
    print(Op->Args[I]);
  }
  OS << ")";
}

void IRPrinter::visit(const Let *Op) {
  OS << "(let " << Op->Name << " = ";
  print(Op->Value);
  OS << " in ";
  print(Op->Body);
  OS << ")";
}

void IRPrinter::visit(const LetStmt *Op) {
  indent();
  OS << "let " << Op->Name << " = ";
  print(Op->Value);
  OS << "\n";
  print(Op->Body);
}

void IRPrinter::visit(const AssertStmt *Op) {
  indent();
  OS << "assert(";
  print(Op->Condition);
  OS << ", \"" << Op->Message << "\")\n";
}

void IRPrinter::visit(const ProducerConsumer *Op) {
  indent();
  OS << (Op->IsProducer ? "produce " : "consume ") << Op->Name << " {\n";
  ++IndentLevel;
  print(Op->Body);
  --IndentLevel;
  indent();
  OS << "}\n";
}

void IRPrinter::visit(const For *Op) {
  indent();
  OS << forTypeName(Op->Kind) << " (" << Op->Name << ", ";
  print(Op->MinExpr);
  OS << ", ";
  print(Op->Extent);
  OS << ") {\n";
  ++IndentLevel;
  print(Op->Body);
  --IndentLevel;
  indent();
  OS << "}\n";
}

void IRPrinter::visit(const Store *Op) {
  indent();
  OS << Op->Name << "[";
  print(Op->Index);
  OS << "] = ";
  print(Op->Value);
  OS << "\n";
}

void IRPrinter::visit(const Provide *Op) {
  indent();
  OS << Op->Name << "(";
  for (size_t I = 0; I < Op->Args.size(); ++I) {
    if (I > 0)
      OS << ", ";
    print(Op->Args[I]);
  }
  OS << ") = ";
  print(Op->Value);
  OS << "\n";
}

void IRPrinter::visit(const Allocate *Op) {
  indent();
  OS << "allocate " << Op->Name << "[" << Op->ElemType.str();
  for (const Expr &E : Op->Extents) {
    OS << " * ";
    print(E);
  }
  OS << "]";
  if (Op->InSharedMemory)
    OS << " in shared";
  OS << "\n";
  print(Op->Body);
}

void IRPrinter::visit(const Realize *Op) {
  indent();
  OS << "realize " << Op->Name << "(";
  for (size_t I = 0; I < Op->Bounds.size(); ++I) {
    if (I > 0)
      OS << ", ";
    OS << "[";
    print(Op->Bounds[I].Min);
    OS << ", ";
    print(Op->Bounds[I].Extent);
    OS << "]";
  }
  OS << ") {\n";
  ++IndentLevel;
  print(Op->Body);
  --IndentLevel;
  indent();
  OS << "}\n";
}

void IRPrinter::visit(const Block *Op) {
  print(Op->First);
  print(Op->Rest);
}

void IRPrinter::visit(const IfThenElse *Op) {
  indent();
  OS << "if (";
  print(Op->Condition);
  OS << ") {\n";
  ++IndentLevel;
  print(Op->ThenCase);
  --IndentLevel;
  if (Op->ElseCase.defined()) {
    indent();
    OS << "} else {\n";
    ++IndentLevel;
    print(Op->ElseCase);
    --IndentLevel;
  }
  indent();
  OS << "}\n";
}

void IRPrinter::visit(const Evaluate *Op) {
  indent();
  print(Op->Value);
  OS << "\n";
}
