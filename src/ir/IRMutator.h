//===-- ir/IRMutator.h - Rewriting IR traversal -----------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base class for IR-to-IR transformations. The default implementations
/// rebuild each node from mutated children, returning the original node
/// unchanged (pointer-identical) when no child changed, so transforms
/// preserve sharing.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_IRMUTATOR_H
#define HALIDE_IR_IRMUTATOR_H

#include "ir/Expr.h"

namespace halide {

/// Rewriting visitor. Override visit() overloads for the nodes a transform
/// cares about; call mutate() to recurse.
class IRMutator {
public:
  virtual ~IRMutator();

  virtual Expr mutate(const Expr &E);
  virtual Stmt mutate(const Stmt &S);

protected:
  virtual Expr visit(const IntImm *);
  virtual Expr visit(const UIntImm *);
  virtual Expr visit(const FloatImm *);
  virtual Expr visit(const StringImm *);
  virtual Expr visit(const Cast *);
  virtual Expr visit(const Variable *);
  virtual Expr visit(const Add *);
  virtual Expr visit(const Sub *);
  virtual Expr visit(const Mul *);
  virtual Expr visit(const Div *);
  virtual Expr visit(const Mod *);
  virtual Expr visit(const Min *);
  virtual Expr visit(const Max *);
  virtual Expr visit(const EQ *);
  virtual Expr visit(const NE *);
  virtual Expr visit(const LT *);
  virtual Expr visit(const LE *);
  virtual Expr visit(const GT *);
  virtual Expr visit(const GE *);
  virtual Expr visit(const And *);
  virtual Expr visit(const Or *);
  virtual Expr visit(const Not *);
  virtual Expr visit(const Select *);
  virtual Expr visit(const Load *);
  virtual Expr visit(const Ramp *);
  virtual Expr visit(const Broadcast *);
  virtual Expr visit(const Call *);
  virtual Expr visit(const Let *);
  virtual Stmt visit(const LetStmt *);
  virtual Stmt visit(const AssertStmt *);
  virtual Stmt visit(const ProducerConsumer *);
  virtual Stmt visit(const For *);
  virtual Stmt visit(const Store *);
  virtual Stmt visit(const Provide *);
  virtual Stmt visit(const Allocate *);
  virtual Stmt visit(const Realize *);
  virtual Stmt visit(const Block *);
  virtual Stmt visit(const IfThenElse *);
  virtual Stmt visit(const Evaluate *);

private:
  friend class MutatorDispatch;
};

} // namespace halide

#endif // HALIDE_IR_IRMUTATOR_H
