//===-- ir/Expr.cpp - IR node constructors and accept() ------------------===//

#include "ir/Expr.h"
#include "ir/IRVisitor.h"

using namespace halide;

Expr::Expr(int Value) : Expr(IntImm::make(Int(32), Value)) {}
Expr::Expr(float Value) : Expr(FloatImm::make(Float(32), Value)) {}
// Double literals become Float(32) when exactly representable (which covers
// the constants appearing in image pipelines, e.g. 0.25); otherwise they
// keep full width. This mirrors how the Halide front end coerces literals.
Expr::Expr(double Value)
    : Expr(FloatImm::make(double(float(Value)) == Value ? Float(32)
                                                        : Float(64),
                          Value)) {}

Expr IntImm::make(Type T, int64_t Value) {
  internal_assert(T.isInt() && T.isScalar()) << "IntImm of type " << T.str();
  internal_assert(T.canRepresent(Value))
      << "IntImm value " << Value << " does not fit in " << T.str();
  IntImm *Node = new IntImm;
  Node->NodeType = T;
  Node->Value = Value;
  return Node;
}

Expr UIntImm::make(Type T, uint64_t Value) {
  internal_assert(T.isUInt() && T.isScalar()) << "UIntImm of type " << T.str();
  internal_assert(T.Bits == 64 || Value <= T.uintMax())
      << "UIntImm value " << Value << " does not fit in " << T.str();
  UIntImm *Node = new UIntImm;
  Node->NodeType = T;
  Node->Value = Value;
  return Node;
}

Expr FloatImm::make(Type T, double Value) {
  internal_assert(T.isFloat() && T.isScalar()) << "FloatImm of type "
                                               << T.str();
  FloatImm *Node = new FloatImm;
  Node->NodeType = T;
  Node->Value = Value;
  return Node;
}

Expr StringImm::make(const std::string &Value) {
  StringImm *Node = new StringImm;
  Node->NodeType = Handle();
  Node->Value = Value;
  return Node;
}

Expr Cast::make(Type T, Expr Value) {
  internal_assert(Value.defined()) << "Cast of undefined Expr";
  internal_assert(T.Lanes == Value.type().Lanes)
      << "Cast may not change lane count: " << T.str() << " from "
      << Value.type().str();
  Cast *Node = new Cast;
  Node->NodeType = T;
  Node->Value = Value;
  return Node;
}

Expr Variable::make(Type T, const std::string &Name, bool IsParam) {
  internal_assert(!Name.empty()) << "Variable with empty name";
  Variable *Node = new Variable;
  Node->NodeType = T;
  Node->Name = Name;
  Node->IsParam = IsParam;
  return Node;
}

Expr Not::make(Expr A) {
  internal_assert(A.defined() && A.type().isBool()) << "Not of non-boolean";
  Not *Node = new Not;
  Node->NodeType = A.type();
  Node->A = A;
  return Node;
}

Expr Select::make(Expr Condition, Expr TrueValue, Expr FalseValue) {
  internal_assert(Condition.defined() && TrueValue.defined() &&
                  FalseValue.defined())
      << "Select with undefined operand";
  internal_assert(Condition.type().isBool()) << "Select condition not boolean";
  internal_assert(TrueValue.type() == FalseValue.type())
      << "Select branches of mismatched type";
  internal_assert(Condition.type().Lanes == TrueValue.type().Lanes)
      << "Select condition lane count mismatch";
  Select *Node = new Select;
  Node->NodeType = TrueValue.type();
  Node->Condition = Condition;
  Node->TrueValue = TrueValue;
  Node->FalseValue = FalseValue;
  return Node;
}

Expr Load::make(Type T, const std::string &Name, Expr Index) {
  internal_assert(Index.defined()) << "Load with undefined index";
  internal_assert(T.Lanes == Index.type().Lanes)
      << "Load lane count mismatch for " << Name;
  Load *Node = new Load;
  Node->NodeType = T;
  Node->Name = Name;
  Node->Index = Index;
  return Node;
}

Expr Ramp::make(Expr Base, Expr Stride, int Lanes) {
  internal_assert(Base.defined() && Stride.defined()) << "Ramp of undef";
  internal_assert(Base.type().isScalar() && Stride.type().isScalar())
      << "Ramp of vector base or stride";
  internal_assert(Base.type() == Stride.type())
      << "Ramp base/stride type mismatch";
  internal_assert(Lanes > 1) << "Ramp with fewer than 2 lanes";
  Ramp *Node = new Ramp;
  Node->NodeType = Base.type().withLanes(Lanes);
  Node->Base = Base;
  Node->Stride = Stride;
  Node->Lanes = Lanes;
  return Node;
}

Expr Broadcast::make(Expr Value, int Lanes) {
  internal_assert(Value.defined() && Value.type().isScalar())
      << "Broadcast of non-scalar";
  internal_assert(Lanes > 1) << "Broadcast with fewer than 2 lanes";
  Broadcast *Node = new Broadcast;
  Node->NodeType = Value.type().withLanes(Lanes);
  Node->Value = Value;
  Node->Lanes = Lanes;
  return Node;
}

const char *const Call::TracePoint = "trace_point";
const char *const Call::ProfileStageStart = "profile_stage_start";
const char *const Call::ProfileStageEnd = "profile_stage_end";
const char *const Call::TraceLoad = "trace_load";
const char *const Call::TraceStore = "trace_store";
const char *const Call::TraceBegin = "trace_begin";
const char *const Call::TraceEnd = "trace_end";

Expr Call::make(Type T, const std::string &Name, std::vector<Expr> Args,
                CallType CallKind) {
  for (const Expr &Arg : Args)
    internal_assert(Arg.defined()) << "Call to " << Name << " with undef arg";
  if (CallKind == CallType::Halide || CallKind == CallType::Image) {
    for (const Expr &Arg : Args) {
      internal_assert(Arg.type().isInt() || Arg.type().isUInt())
          << "Coordinate argument of call to " << Name << " is not integer";
    }
  }
  Call *Node = new Call;
  Node->NodeType = T;
  Node->Name = Name;
  Node->Args = std::move(Args);
  Node->CallKind = CallKind;
  return Node;
}

Expr Let::make(const std::string &Name, Expr Value, Expr Body) {
  internal_assert(Value.defined() && Body.defined()) << "Let of undef";
  Let *Node = new Let;
  Node->NodeType = Body.type();
  Node->Name = Name;
  Node->Value = Value;
  Node->Body = Body;
  return Node;
}

Stmt LetStmt::make(const std::string &Name, Expr Value, Stmt Body) {
  internal_assert(Value.defined() && Body.defined()) << "LetStmt of undef";
  LetStmt *Node = new LetStmt;
  Node->Name = Name;
  Node->Value = Value;
  Node->Body = Body;
  return Node;
}

Stmt AssertStmt::make(Expr Condition, const std::string &Message) {
  internal_assert(Condition.defined()) << "AssertStmt of undef";
  AssertStmt *Node = new AssertStmt;
  Node->Condition = Condition;
  Node->Message = Message;
  return Node;
}

Stmt ProducerConsumer::make(const std::string &Name, bool IsProducer,
                            Stmt Body) {
  internal_assert(Body.defined()) << "ProducerConsumer of undef body";
  ProducerConsumer *Node = new ProducerConsumer;
  Node->Name = Name;
  Node->IsProducer = IsProducer;
  Node->Body = Body;
  return Node;
}

const char *halide::forTypeName(ForType T) {
  switch (T) {
  case ForType::Serial:
    return "for";
  case ForType::Parallel:
    return "parallel for";
  case ForType::Vectorized:
    return "vectorized for";
  case ForType::Unrolled:
    return "unrolled for";
  case ForType::GPUBlock:
    return "gpu_block for";
  case ForType::GPUThread:
    return "gpu_thread for";
  }
  internal_error << "unknown ForType";
  return "";
}

Stmt For::make(const std::string &Name, Expr MinExpr, Expr Extent,
               ForType Kind, Stmt Body) {
  internal_assert(MinExpr.defined() && Extent.defined() && Body.defined())
      << "For with undefined parts";
  internal_assert(MinExpr.type().isScalar() && Extent.type().isScalar())
      << "For with vector bounds";
  For *Node = new For;
  Node->Name = Name;
  Node->MinExpr = MinExpr;
  Node->Extent = Extent;
  Node->Kind = Kind;
  Node->Body = Body;
  return Node;
}

Stmt Store::make(const std::string &Name, Expr Value, Expr Index) {
  internal_assert(Value.defined() && Index.defined()) << "Store of undef";
  internal_assert(Value.type().Lanes == Index.type().Lanes)
      << "Store lane count mismatch for " << Name;
  Store *Node = new Store;
  Node->Name = Name;
  Node->Value = Value;
  Node->Index = Index;
  return Node;
}

Stmt Provide::make(const std::string &Name, Expr Value,
                   std::vector<Expr> Args) {
  internal_assert(Value.defined()) << "Provide of undef value";
  for (const Expr &Arg : Args)
    internal_assert(Arg.defined()) << "Provide with undef arg";
  Provide *Node = new Provide;
  Node->Name = Name;
  Node->Value = Value;
  Node->Args = std::move(Args);
  return Node;
}

Stmt Allocate::make(const std::string &Name, Type ElemType,
                    std::vector<Expr> Extents, Stmt Body,
                    bool InSharedMemory) {
  internal_assert(Body.defined()) << "Allocate of undef body";
  for (const Expr &E : Extents)
    internal_assert(E.defined() && E.type().isScalar())
        << "Allocate with bad extent";
  Allocate *Node = new Allocate;
  Node->Name = Name;
  Node->ElemType = ElemType;
  Node->Extents = std::move(Extents);
  Node->Body = Body;
  Node->InSharedMemory = InSharedMemory;
  return Node;
}

Stmt Realize::make(const std::string &Name, Type ElemType, Region Bounds,
                   Stmt Body) {
  internal_assert(Body.defined()) << "Realize of undef body";
  for (const Range &R : Bounds)
    internal_assert(R.Min.defined() && R.Extent.defined())
        << "Realize with undefined bounds";
  Realize *Node = new Realize;
  Node->Name = Name;
  Node->ElemType = ElemType;
  Node->Bounds = std::move(Bounds);
  Node->Body = Body;
  return Node;
}

Stmt Block::make(Stmt First, Stmt Rest) {
  internal_assert(First.defined() && Rest.defined()) << "Block of undef";
  Block *Node = new Block;
  Node->First = First;
  Node->Rest = Rest;
  return Node;
}

Stmt Block::make(const std::vector<Stmt> &Stmts) {
  internal_assert(!Stmts.empty()) << "Block of empty statement list";
  Stmt Result = Stmts.back();
  for (size_t I = Stmts.size() - 1; I-- > 0;)
    Result = Block::make(Stmts[I], Result);
  return Result;
}

Stmt IfThenElse::make(Expr Condition, Stmt ThenCase, Stmt ElseCase) {
  internal_assert(Condition.defined() && ThenCase.defined())
      << "IfThenElse of undef";
  IfThenElse *Node = new IfThenElse;
  Node->Condition = Condition;
  Node->ThenCase = ThenCase;
  Node->ElseCase = ElseCase;
  return Node;
}

Stmt Evaluate::make(Expr Value) {
  internal_assert(Value.defined()) << "Evaluate of undef";
  Evaluate *Node = new Evaluate;
  Node->Value = Value;
  return Node;
}

namespace halide {

template <typename DerivedT> void ExprNode<DerivedT>::accept(
    IRVisitor *Visitor) const {
  Visitor->visit(static_cast<const DerivedT *>(this));
}
template <typename DerivedT> void StmtNode<DerivedT>::accept(
    IRVisitor *Visitor) const {
  Visitor->visit(static_cast<const DerivedT *>(this));
}

// Anchor the accept methods here, one explicit instantiation per node type.
template struct ExprNode<IntImm>;
template struct ExprNode<UIntImm>;
template struct ExprNode<FloatImm>;
template struct ExprNode<StringImm>;
template struct ExprNode<Cast>;
template struct ExprNode<Variable>;
template struct ExprNode<Add>;
template struct ExprNode<Sub>;
template struct ExprNode<Mul>;
template struct ExprNode<Div>;
template struct ExprNode<Mod>;
template struct ExprNode<Min>;
template struct ExprNode<Max>;
template struct ExprNode<EQ>;
template struct ExprNode<NE>;
template struct ExprNode<LT>;
template struct ExprNode<LE>;
template struct ExprNode<GT>;
template struct ExprNode<GE>;
template struct ExprNode<And>;
template struct ExprNode<Or>;
template struct ExprNode<Not>;
template struct ExprNode<Select>;
template struct ExprNode<Load>;
template struct ExprNode<Ramp>;
template struct ExprNode<Broadcast>;
template struct ExprNode<Call>;
template struct ExprNode<Let>;
template struct StmtNode<LetStmt>;
template struct StmtNode<AssertStmt>;
template struct StmtNode<ProducerConsumer>;
template struct StmtNode<For>;
template struct StmtNode<Store>;
template struct StmtNode<Provide>;
template struct StmtNode<Allocate>;
template struct StmtNode<Realize>;
template struct StmtNode<Block>;
template struct StmtNode<IfThenElse>;
template struct StmtNode<Evaluate>;

} // namespace halide
