//===-- ir/IROperators.cpp --------------------------------------------------=//

#include "ir/IROperators.h"

#include <cmath>

using namespace halide;

Expr halide::makeConst(Type T, int64_t Value) {
  Type Elem = T.element();
  Expr Scalar;
  if (Elem.isInt())
    Scalar = IntImm::make(Elem, Value);
  else if (Elem.isUInt())
    Scalar = UIntImm::make(Elem, uint64_t(Value));
  else if (Elem.isFloat())
    Scalar = FloatImm::make(Elem, double(Value));
  else
    internal_error << "makeConst of handle type";
  if (T.isVector())
    return Broadcast::make(Scalar, T.Lanes);
  return Scalar;
}

Expr halide::makeConst(Type T, double Value) {
  Type Elem = T.element();
  Expr Scalar;
  if (Elem.isFloat()) {
    Scalar = FloatImm::make(Elem, Value);
  } else {
    internal_assert(Value == std::floor(Value))
        << "non-integral constant for integer type";
    return makeConst(T, int64_t(Value));
  }
  if (T.isVector())
    return Broadcast::make(Scalar, T.Lanes);
  return Scalar;
}

Expr halide::makeZero(Type T) { return makeConst(T, int64_t(0)); }
Expr halide::makeOne(Type T) { return makeConst(T, int64_t(1)); }
Expr halide::makeTrue(int Lanes) { return makeConst(Bool(Lanes), int64_t(1)); }
Expr halide::makeFalse(int Lanes) {
  return makeConst(Bool(Lanes), int64_t(0));
}

Expr halide::makeTypeMin(Type T) {
  Type Elem = T.element();
  if (Elem.isFloat())
    return makeConst(T, Elem.Bits == 32 ? double(-3.402823466e+38)
                                        : -1.7976931348623157e+308);
  return makeConst(T, Elem.intMin());
}

Expr halide::makeTypeMax(Type T) {
  Type Elem = T.element();
  if (Elem.isFloat())
    return makeConst(T, Elem.Bits == 32 ? double(3.402823466e+38)
                                        : 1.7976931348623157e+308);
  if (Elem.isUInt() && Elem.Bits == 64)
    return UIntImm::make(Elem, UINT64_MAX);
  return makeConst(T, Elem.intMax());
}

bool halide::asConstInt(const Expr &E, int64_t *Value) {
  if (const Broadcast *B = E.as<Broadcast>())
    return asConstInt(B->Value, Value);
  if (const IntImm *I = E.as<IntImm>()) {
    *Value = I->Value;
    return true;
  }
  if (const UIntImm *U = E.as<UIntImm>()) {
    if (U->Value > uint64_t(INT64_MAX))
      return false;
    *Value = int64_t(U->Value);
    return true;
  }
  return false;
}

bool halide::asConstFloat(const Expr &E, double *Value) {
  if (const Broadcast *B = E.as<Broadcast>())
    return asConstFloat(B->Value, Value);
  if (const FloatImm *F = E.as<FloatImm>()) {
    *Value = F->Value;
    return true;
  }
  return false;
}

bool halide::isConst(const Expr &E) {
  int64_t IntVal;
  double FloatVal;
  return asConstInt(E, &IntVal) || asConstFloat(E, &FloatVal);
}

bool halide::isConstZero(const Expr &E) {
  int64_t IntVal;
  if (asConstInt(E, &IntVal))
    return IntVal == 0;
  double FloatVal;
  if (asConstFloat(E, &FloatVal))
    return FloatVal == 0.0;
  return false;
}

bool halide::isConstOne(const Expr &E) {
  int64_t IntVal;
  if (asConstInt(E, &IntVal))
    return IntVal == 1;
  double FloatVal;
  if (asConstFloat(E, &FloatVal))
    return FloatVal == 1.0;
  return false;
}

bool halide::isPositiveConst(const Expr &E) {
  int64_t IntVal;
  if (asConstInt(E, &IntVal))
    return IntVal > 0;
  double FloatVal;
  if (asConstFloat(E, &FloatVal))
    return FloatVal > 0.0;
  return false;
}

bool halide::isNegativeConst(const Expr &E) {
  int64_t IntVal;
  if (asConstInt(E, &IntVal))
    return IntVal < 0;
  double FloatVal;
  if (asConstFloat(E, &FloatVal))
    return FloatVal < 0.0;
  return false;
}

namespace {

/// True if the immediate \p E can be losslessly re-made with type \p T.
bool immRepresentableAs(const Expr &E, Type T) {
  int64_t IntVal;
  if (asConstInt(E, &IntVal)) {
    if (T.isFloat())
      return T.element().canRepresent(IntVal) ||
             double(IntVal) == std::floor(double(IntVal));
    return T.element().canRepresent(IntVal);
  }
  double FloatVal;
  if (asConstFloat(E, &FloatVal))
    return T.isFloat();
  return false;
}

Expr remakeImmAs(const Expr &E, Type T) {
  int64_t IntVal;
  if (asConstInt(E, &IntVal))
    return makeConst(T, IntVal);
  double FloatVal;
  if (asConstFloat(E, &FloatVal))
    return makeConst(T, FloatVal);
  internal_error << "remakeImmAs of non-immediate";
  return Expr();
}

} // namespace

void halide::matchTypes(Expr &A, Expr &B) {
  internal_assert(A.defined() && B.defined()) << "matchTypes of undef";
  Type TA = A.type(), TB = B.type();
  if (TA == TB)
    return;

  // Broadcast scalars against vectors first.
  if (TA.isScalar() && TB.isVector()) {
    A = Broadcast::make(A, TB.Lanes);
    TA = A.type();
  } else if (TB.isScalar() && TA.isVector()) {
    B = Broadcast::make(B, TA.Lanes);
    TB = B.type();
  }
  internal_assert(TA.Lanes == TB.Lanes)
      << "cannot match vector types of different widths";
  if (TA == TB)
    return;

  // Immediates adopt the other operand's type when representable: in(x) + 1
  // stays uint8 when `in` is uint8.
  if (isConst(A) && !isConst(B) && immRepresentableAs(A, TB)) {
    A = remakeImmAs(A, TB);
    return;
  }
  if (isConst(B) && !isConst(A) && immRepresentableAs(B, TA)) {
    B = remakeImmAs(B, TA);
    return;
  }

  Type Target;
  if (TA.isFloat() || TB.isFloat()) {
    int Bits = 32;
    if (TA.isFloat())
      Bits = std::max(Bits, TA.Bits);
    if (TB.isFloat())
      Bits = std::max(Bits, TB.Bits);
    Target = Float(Bits, TA.Lanes);
  } else {
    int Bits = std::max(TA.Bits, TB.Bits);
    bool IsSigned = TA.isInt() || TB.isInt();
    Target = IsSigned ? Int(Bits, TA.Lanes) : UInt(Bits, TA.Lanes);
  }
  if (TA != Target)
    A = Cast::make(Target, A);
  if (TB != Target)
    B = Cast::make(Target, B);
}

int64_t halide::floorDiv(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t halide::floorMod(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  return A - floorDiv(A, B) * B;
}

int64_t halide::wrapToType(int64_t Value, Type T) {
  if (T.Bits >= 64)
    return Value;
  uint64_t Mask = (uint64_t(1) << T.Bits) - 1;
  uint64_t U = uint64_t(Value) & Mask;
  if (T.isInt() && (U >> (T.Bits - 1)))
    return int64_t(U) - (int64_t(1) << T.Bits);
  return int64_t(U);
}

namespace {

enum class ArithOp { Add, Sub, Mul, Div, Mod, Min, Max };

/// Constant-folds `A op B` for matching immediates; returns undefined Expr
/// when either side is not an immediate.
Expr foldBinary(ArithOp Op, const Expr &A, const Expr &B) {
  Type T = A.type();
  int64_t IA, IB;
  if (asConstInt(A, &IA) && asConstInt(B, &IB) && !T.isFloat()) {
    int64_t R = 0;
    switch (Op) {
    case ArithOp::Add:
      R = wrapToType(IA + IB, T);
      break;
    case ArithOp::Sub:
      R = wrapToType(IA - IB, T);
      break;
    case ArithOp::Mul:
      R = wrapToType(IA * IB, T);
      break;
    case ArithOp::Div:
      R = floorDiv(IA, IB);
      break;
    case ArithOp::Mod:
      R = floorMod(IA, IB);
      break;
    case ArithOp::Min:
      R = std::min(IA, IB);
      break;
    case ArithOp::Max:
      R = std::max(IA, IB);
      break;
    }
    return makeConst(T, R);
  }
  double FA, FB;
  if (asConstFloat(A, &FA) && asConstFloat(B, &FB)) {
    double R = 0;
    switch (Op) {
    case ArithOp::Add:
      R = FA + FB;
      break;
    case ArithOp::Sub:
      R = FA - FB;
      break;
    case ArithOp::Mul:
      R = FA * FB;
      break;
    case ArithOp::Div:
      R = FA / FB;
      break;
    case ArithOp::Mod:
      R = FA - std::floor(FA / FB) * FB;
      break;
    case ArithOp::Min:
      R = std::min(FA, FB);
      break;
    case ArithOp::Max:
      R = std::max(FA, FB);
      break;
    }
    if (T.element().Bits == 32)
      R = double(float(R));
    return makeConst(T, R);
  }
  return Expr();
}

} // namespace

Expr halide::operator+(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Add, A, B); Folded.defined())
    return Folded;
  if (isConstZero(A))
    return B;
  if (isConstZero(B))
    return A;
  return Add::make(A, B);
}

Expr halide::operator-(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Sub, A, B); Folded.defined())
    return Folded;
  if (isConstZero(B))
    return A;
  return Sub::make(A, B);
}

Expr halide::operator-(Expr A) {
  internal_assert(A.defined()) << "negation of undef";
  return makeZero(A.type()) - A;
}

Expr halide::operator*(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Mul, A, B); Folded.defined())
    return Folded;
  if (isConstOne(A))
    return B;
  if (isConstOne(B))
    return A;
  if (isConstZero(A))
    return A;
  if (isConstZero(B))
    return B;
  return Mul::make(A, B);
}

Expr halide::operator/(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Div, A, B); Folded.defined())
    return Folded;
  if (isConstOne(B))
    return A;
  return Div::make(A, B);
}

Expr halide::operator%(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Mod, A, B); Folded.defined())
    return Folded;
  return Mod::make(A, B);
}

Expr &halide::operator+=(Expr &A, Expr B) { return A = A + B; }
Expr &halide::operator-=(Expr &A, Expr B) { return A = A - B; }
Expr &halide::operator*=(Expr &A, Expr B) { return A = A * B; }
Expr &halide::operator/=(Expr &A, Expr B) { return A = A / B; }

namespace {

enum class CmpOp { EQ, NE, LT, LE, GT, GE };

Expr foldCompare(CmpOp Op, const Expr &A, const Expr &B) {
  int64_t IA, IB;
  double FA, FB;
  bool HaveInt = asConstInt(A, &IA) && asConstInt(B, &IB);
  bool HaveFloat = asConstFloat(A, &FA) && asConstFloat(B, &FB);
  if (!HaveInt && !HaveFloat)
    return Expr();
  bool R = false;
  switch (Op) {
  case CmpOp::EQ:
    R = HaveInt ? IA == IB : FA == FB;
    break;
  case CmpOp::NE:
    R = HaveInt ? IA != IB : FA != FB;
    break;
  case CmpOp::LT:
    R = HaveInt ? IA < IB : FA < FB;
    break;
  case CmpOp::LE:
    R = HaveInt ? IA <= IB : FA <= FB;
    break;
  case CmpOp::GT:
    R = HaveInt ? IA > IB : FA > FB;
    break;
  case CmpOp::GE:
    R = HaveInt ? IA >= IB : FA >= FB;
    break;
  }
  return makeConst(Bool(A.type().Lanes), int64_t(R));
}

} // namespace

Expr halide::operator==(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr F = foldCompare(CmpOp::EQ, A, B); F.defined())
    return F;
  return EQ::make(A, B);
}
Expr halide::operator!=(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr F = foldCompare(CmpOp::NE, A, B); F.defined())
    return F;
  return NE::make(A, B);
}
Expr halide::operator<(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr F = foldCompare(CmpOp::LT, A, B); F.defined())
    return F;
  return LT::make(A, B);
}
Expr halide::operator<=(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr F = foldCompare(CmpOp::LE, A, B); F.defined())
    return F;
  return LE::make(A, B);
}
Expr halide::operator>(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr F = foldCompare(CmpOp::GT, A, B); F.defined())
    return F;
  return GT::make(A, B);
}
Expr halide::operator>=(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr F = foldCompare(CmpOp::GE, A, B); F.defined())
    return F;
  return GE::make(A, B);
}

Expr halide::operator&&(Expr A, Expr B) {
  internal_assert(A.type().isBool() && B.type().isBool()) << "&& of non-bool";
  matchTypes(A, B);
  int64_t V;
  if (asConstInt(A, &V))
    return V ? B : A;
  if (asConstInt(B, &V))
    return V ? A : B;
  return And::make(A, B);
}

Expr halide::operator||(Expr A, Expr B) {
  internal_assert(A.type().isBool() && B.type().isBool()) << "|| of non-bool";
  matchTypes(A, B);
  int64_t V;
  if (asConstInt(A, &V))
    return V ? A : B;
  if (asConstInt(B, &V))
    return V ? B : A;
  return Or::make(A, B);
}

Expr halide::operator!(Expr A) {
  int64_t V;
  if (asConstInt(A, &V))
    return makeConst(A.type(), int64_t(!V));
  return Not::make(A);
}

Expr halide::min(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Min, A, B); Folded.defined())
    return Folded;
  return Min::make(A, B);
}

Expr halide::max(Expr A, Expr B) {
  matchTypes(A, B);
  if (Expr Folded = foldBinary(ArithOp::Max, A, B); Folded.defined())
    return Folded;
  return Max::make(A, B);
}

Expr halide::clamp(Expr E, Expr Lo, Expr Hi) {
  return max(min(E, Hi), Lo);
}

Expr halide::select(Expr Condition, Expr TrueValue, Expr FalseValue) {
  matchTypes(TrueValue, FalseValue);
  internal_assert(Condition.defined() && Condition.type().isBool())
      << "select condition must be boolean";
  if (Condition.type().isScalar() && TrueValue.type().isVector())
    Condition = Broadcast::make(Condition, TrueValue.type().Lanes);
  int64_t V;
  if (asConstInt(Condition, &V))
    return V ? TrueValue : FalseValue;
  return Select::make(Condition, TrueValue, FalseValue);
}

Expr halide::select(Expr C1, Expr V1, Expr C2, Expr V2, Expr Default) {
  return select(C1, V1, select(C2, V2, Default));
}

Expr halide::select(Expr C1, Expr V1, Expr C2, Expr V2, Expr C3, Expr V3,
                    Expr Default) {
  return select(C1, V1, select(C2, V2, select(C3, V3, Default)));
}

Expr halide::abs(Expr E) {
  internal_assert(E.defined()) << "abs of undef";
  if (E.type().isUInt())
    return E;
  return select(E < makeZero(E.type()), -E, E);
}

Expr halide::cast(Type T, Expr E) {
  internal_assert(E.defined()) << "cast of undef";
  if (E.type() == T)
    return E;
  // Fold casts of immediates.
  int64_t IntVal;
  double FloatVal;
  if (asConstInt(E, &IntVal)) {
    if (T.isFloat())
      return makeConst(T, double(IntVal));
    return makeConst(T, wrapToType(IntVal, T.element()));
  }
  if (asConstFloat(E, &FloatVal) && T.isFloat())
    return makeConst(T, FloatVal);
  if (T.isScalar() && E.type().isVector())
    internal_error << "cannot cast vector to scalar";
  if (T.isVector() && E.type().isScalar())
    return Broadcast::make(cast(T.element(), E), T.Lanes);
  return Cast::make(T, E);
}

namespace {

/// Builds a call to a pure external math function, promoting integer
/// arguments to Float(32).
Expr mathCall(const char *Name, Expr E) {
  internal_assert(E.defined()) << Name << " of undef";
  if (!E.type().isFloat())
    E = cast(Float(32, E.type().Lanes), E);
  return Call::make(E.type(), Name, {E}, CallType::PureExtern);
}

} // namespace

Expr halide::sqrt(Expr E) {
  double V;
  if (asConstFloat(E, &V))
    return makeConst(E.type(), std::sqrt(V));
  return mathCall("sqrt", E);
}
Expr halide::sin(Expr E) { return mathCall("sin", E); }
Expr halide::cos(Expr E) { return mathCall("cos", E); }
Expr halide::exp(Expr E) { return mathCall("exp", E); }
Expr halide::log(Expr E) { return mathCall("log", E); }

Expr halide::pow(Expr Base, Expr Exponent) {
  if (!Base.type().isFloat())
    Base = cast(Float(32, Base.type().Lanes), Base);
  Exponent = cast(Base.type(), Exponent);
  return Call::make(Base.type(), "pow", {Base, Exponent},
                    CallType::PureExtern);
}

Expr halide::floor(Expr E) {
  double V;
  if (asConstFloat(E, &V))
    return makeConst(E.type(), std::floor(V));
  return mathCall("floor", E);
}
Expr halide::ceil(Expr E) {
  double V;
  if (asConstFloat(E, &V))
    return makeConst(E.type(), std::ceil(V));
  return mathCall("ceil", E);
}
Expr halide::round(Expr E) { return mathCall("round", E); }

Expr halide::lerp(Expr Zero, Expr One, Expr Weight) {
  matchTypes(Zero, One);
  Type T = Zero.type();
  Expr Z = T.isFloat() ? Zero : cast(Float(32, T.Lanes), Zero);
  Expr O = T.isFloat() ? One : cast(Float(32, T.Lanes), One);
  Expr W = cast(Z.type(), Weight);
  Expr R = Z + (O - Z) * W;
  return T.isFloat() ? R : cast(T, R);
}
