//===-- ir/IRVisitor.cpp ---------------------------------------------------==//

#include "ir/IRVisitor.h"

using namespace halide;

IRVisitor::~IRVisitor() = default;

void IRVisitor::visit(const IntImm *) {}
void IRVisitor::visit(const UIntImm *) {}
void IRVisitor::visit(const FloatImm *) {}
void IRVisitor::visit(const StringImm *) {}
void IRVisitor::visit(const Variable *) {}

void IRVisitor::visit(const Cast *Op) { Op->Value.accept(this); }

namespace {
template <typename T> void visitBinary(IRVisitor *V, const T *Op) {
  Op->A.accept(V);
  Op->B.accept(V);
}
} // namespace

void IRVisitor::visit(const Add *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Sub *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Mul *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Div *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Mod *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Min *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Max *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const EQ *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const NE *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const LT *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const LE *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const GT *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const GE *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const And *Op) { visitBinary(this, Op); }
void IRVisitor::visit(const Or *Op) { visitBinary(this, Op); }

void IRVisitor::visit(const Not *Op) { Op->A.accept(this); }

void IRVisitor::visit(const Select *Op) {
  Op->Condition.accept(this);
  Op->TrueValue.accept(this);
  Op->FalseValue.accept(this);
}

void IRVisitor::visit(const Load *Op) { Op->Index.accept(this); }

void IRVisitor::visit(const Ramp *Op) {
  Op->Base.accept(this);
  Op->Stride.accept(this);
}

void IRVisitor::visit(const Broadcast *Op) { Op->Value.accept(this); }

void IRVisitor::visit(const Call *Op) {
  for (const Expr &Arg : Op->Args)
    Arg.accept(this);
}

void IRVisitor::visit(const Let *Op) {
  Op->Value.accept(this);
  Op->Body.accept(this);
}

void IRVisitor::visit(const LetStmt *Op) {
  Op->Value.accept(this);
  Op->Body.accept(this);
}

void IRVisitor::visit(const AssertStmt *Op) { Op->Condition.accept(this); }

void IRVisitor::visit(const ProducerConsumer *Op) { Op->Body.accept(this); }

void IRVisitor::visit(const For *Op) {
  Op->MinExpr.accept(this);
  Op->Extent.accept(this);
  Op->Body.accept(this);
}

void IRVisitor::visit(const Store *Op) {
  Op->Value.accept(this);
  Op->Index.accept(this);
}

void IRVisitor::visit(const Provide *Op) {
  Op->Value.accept(this);
  for (const Expr &Arg : Op->Args)
    Arg.accept(this);
}

void IRVisitor::visit(const Allocate *Op) {
  for (const Expr &E : Op->Extents)
    E.accept(this);
  Op->Body.accept(this);
}

void IRVisitor::visit(const Realize *Op) {
  for (const Range &R : Op->Bounds) {
    R.Min.accept(this);
    R.Extent.accept(this);
  }
  Op->Body.accept(this);
}

void IRVisitor::visit(const Block *Op) {
  Op->First.accept(this);
  Op->Rest.accept(this);
}

void IRVisitor::visit(const IfThenElse *Op) {
  Op->Condition.accept(this);
  Op->ThenCase.accept(this);
  if (Op->ElseCase.defined())
    Op->ElseCase.accept(this);
}

void IRVisitor::visit(const Evaluate *Op) { Op->Value.accept(this); }

namespace {

/// Counts every node reached by the default traversal, stopping the
/// descent once an optional cap is exceeded (callers that only need
/// "bigger than K?" pay O(K), not O(tree)).
class NodeCounter : public IRVisitor {
public:
  explicit NodeCounter(size_t Cap = SIZE_MAX) : Cap(Cap) {}

  size_t N = 0;

#define HALIDE_COUNT(NODE)                                                    \
  void visit(const NODE *Op) override {                                       \
    if (++N > Cap)                                                            \
      return;                                                                 \
    IRVisitor::visit(Op);                                                     \
  }
  HALIDE_COUNT(IntImm)
  HALIDE_COUNT(UIntImm)
  HALIDE_COUNT(FloatImm)
  HALIDE_COUNT(StringImm)
  HALIDE_COUNT(Cast)
  HALIDE_COUNT(Variable)
  HALIDE_COUNT(Add)
  HALIDE_COUNT(Sub)
  HALIDE_COUNT(Mul)
  HALIDE_COUNT(Div)
  HALIDE_COUNT(Mod)
  HALIDE_COUNT(Min)
  HALIDE_COUNT(Max)
  HALIDE_COUNT(EQ)
  HALIDE_COUNT(NE)
  HALIDE_COUNT(LT)
  HALIDE_COUNT(LE)
  HALIDE_COUNT(GT)
  HALIDE_COUNT(GE)
  HALIDE_COUNT(And)
  HALIDE_COUNT(Or)
  HALIDE_COUNT(Not)
  HALIDE_COUNT(Select)
  HALIDE_COUNT(Load)
  HALIDE_COUNT(Ramp)
  HALIDE_COUNT(Broadcast)
  HALIDE_COUNT(Call)
  HALIDE_COUNT(Let)
  HALIDE_COUNT(LetStmt)
  HALIDE_COUNT(AssertStmt)
  HALIDE_COUNT(ProducerConsumer)
  HALIDE_COUNT(For)
  HALIDE_COUNT(Store)
  HALIDE_COUNT(Provide)
  HALIDE_COUNT(Allocate)
  HALIDE_COUNT(Realize)
  HALIDE_COUNT(Block)
  HALIDE_COUNT(IfThenElse)
  HALIDE_COUNT(Evaluate)
#undef HALIDE_COUNT

private:
  size_t Cap;
};

} // namespace

size_t halide::countIRNodes(const Expr &E) {
  if (!E.defined())
    return 0;
  NodeCounter C;
  E.accept(&C);
  return C.N;
}

size_t halide::countIRNodes(const Stmt &S) {
  if (!S.defined())
    return 0;
  NodeCounter C;
  S.accept(&C);
  return C.N;
}

bool halide::irNodeCountExceeds(const Expr &E, size_t Limit) {
  if (!E.defined())
    return Limit == 0;
  NodeCounter C(Limit);
  E.accept(&C);
  return C.N > Limit;
}
