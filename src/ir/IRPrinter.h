//===-- ir/IRPrinter.h - Human-readable IR printing -------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printing of Exprs and Stmts in the loop-nest style the paper uses
/// in Figure 5. Used for debugging, golden tests, and EXPERIMENTS.md output.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_IRPRINTER_H
#define HALIDE_IR_IRPRINTER_H

#include "ir/IRVisitor.h"

#include <iosfwd>
#include <string>

namespace halide {

/// Renders an expression as a compact single-line string.
std::string exprToString(const Expr &E);

/// Renders a statement as an indented multi-line string.
std::string stmtToString(const Stmt &S);

std::ostream &operator<<(std::ostream &OS, const Expr &E);
std::ostream &operator<<(std::ostream &OS, const Stmt &S);

/// The visitor behind the printing entry points; exposed so debugging tools
/// can subclass it (e.g. to annotate nodes).
class IRPrinter : public IRVisitor {
public:
  explicit IRPrinter(std::ostream &OS) : OS(OS) {}

  void print(const Expr &E);
  void print(const Stmt &S);

  void visit(const IntImm *) override;
  void visit(const UIntImm *) override;
  void visit(const FloatImm *) override;
  void visit(const StringImm *) override;
  void visit(const Cast *) override;
  void visit(const Variable *) override;
  void visit(const Add *) override;
  void visit(const Sub *) override;
  void visit(const Mul *) override;
  void visit(const Div *) override;
  void visit(const Mod *) override;
  void visit(const Min *) override;
  void visit(const Max *) override;
  void visit(const EQ *) override;
  void visit(const NE *) override;
  void visit(const LT *) override;
  void visit(const LE *) override;
  void visit(const GT *) override;
  void visit(const GE *) override;
  void visit(const And *) override;
  void visit(const Or *) override;
  void visit(const Not *) override;
  void visit(const Select *) override;
  void visit(const Load *) override;
  void visit(const Ramp *) override;
  void visit(const Broadcast *) override;
  void visit(const Call *) override;
  void visit(const Let *) override;
  void visit(const LetStmt *) override;
  void visit(const AssertStmt *) override;
  void visit(const ProducerConsumer *) override;
  void visit(const For *) override;
  void visit(const Store *) override;
  void visit(const Provide *) override;
  void visit(const Allocate *) override;
  void visit(const Realize *) override;
  void visit(const Block *) override;
  void visit(const IfThenElse *) override;
  void visit(const Evaluate *) override;

private:
  void indent();
  template <typename T> void printBinary(const T *Op, const char *Symbol);

  std::ostream &OS;
  int IndentLevel = 0;
};

} // namespace halide

#endif // HALIDE_IR_IRPRINTER_H
