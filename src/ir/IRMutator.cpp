//===-- ir/IRMutator.cpp ---------------------------------------------------=//

#include "ir/IRMutator.h"

using namespace halide;

IRMutator::~IRMutator() = default;

Expr IRMutator::mutate(const Expr &E) {
  if (!E.defined())
    return E;
  switch (E->Kind) {
  case IRNodeKind::IntImm:
    return visit(E.as<IntImm>());
  case IRNodeKind::UIntImm:
    return visit(E.as<UIntImm>());
  case IRNodeKind::FloatImm:
    return visit(E.as<FloatImm>());
  case IRNodeKind::StringImm:
    return visit(E.as<StringImm>());
  case IRNodeKind::Cast:
    return visit(E.as<Cast>());
  case IRNodeKind::Variable:
    return visit(E.as<Variable>());
  case IRNodeKind::Add:
    return visit(E.as<Add>());
  case IRNodeKind::Sub:
    return visit(E.as<Sub>());
  case IRNodeKind::Mul:
    return visit(E.as<Mul>());
  case IRNodeKind::Div:
    return visit(E.as<Div>());
  case IRNodeKind::Mod:
    return visit(E.as<Mod>());
  case IRNodeKind::Min:
    return visit(E.as<Min>());
  case IRNodeKind::Max:
    return visit(E.as<Max>());
  case IRNodeKind::EQ:
    return visit(E.as<EQ>());
  case IRNodeKind::NE:
    return visit(E.as<NE>());
  case IRNodeKind::LT:
    return visit(E.as<LT>());
  case IRNodeKind::LE:
    return visit(E.as<LE>());
  case IRNodeKind::GT:
    return visit(E.as<GT>());
  case IRNodeKind::GE:
    return visit(E.as<GE>());
  case IRNodeKind::And:
    return visit(E.as<And>());
  case IRNodeKind::Or:
    return visit(E.as<Or>());
  case IRNodeKind::Not:
    return visit(E.as<Not>());
  case IRNodeKind::Select:
    return visit(E.as<Select>());
  case IRNodeKind::Load:
    return visit(E.as<Load>());
  case IRNodeKind::Ramp:
    return visit(E.as<Ramp>());
  case IRNodeKind::Broadcast:
    return visit(E.as<Broadcast>());
  case IRNodeKind::Call:
    return visit(E.as<Call>());
  case IRNodeKind::Let:
    return visit(E.as<Let>());
  default:
    internal_error << "expression mutate() hit statement kind";
    return Expr();
  }
}

Stmt IRMutator::mutate(const Stmt &S) {
  if (!S.defined())
    return S;
  switch (S->Kind) {
  case IRNodeKind::LetStmt:
    return visit(S.as<LetStmt>());
  case IRNodeKind::AssertStmt:
    return visit(S.as<AssertStmt>());
  case IRNodeKind::ProducerConsumer:
    return visit(S.as<ProducerConsumer>());
  case IRNodeKind::For:
    return visit(S.as<For>());
  case IRNodeKind::Store:
    return visit(S.as<Store>());
  case IRNodeKind::Provide:
    return visit(S.as<Provide>());
  case IRNodeKind::Allocate:
    return visit(S.as<Allocate>());
  case IRNodeKind::Realize:
    return visit(S.as<Realize>());
  case IRNodeKind::Block:
    return visit(S.as<Block>());
  case IRNodeKind::IfThenElse:
    return visit(S.as<IfThenElse>());
  case IRNodeKind::Evaluate:
    return visit(S.as<Evaluate>());
  default:
    internal_error << "statement mutate() hit expression kind";
    return Stmt();
  }
}

Expr IRMutator::visit(const IntImm *Op) { return Op; }
Expr IRMutator::visit(const UIntImm *Op) { return Op; }
Expr IRMutator::visit(const FloatImm *Op) { return Op; }
Expr IRMutator::visit(const StringImm *Op) { return Op; }
Expr IRMutator::visit(const Variable *Op) { return Op; }

Expr IRMutator::visit(const Cast *Op) {
  Expr Value = mutate(Op->Value);
  if (Value.sameAs(Op->Value))
    return Op;
  return Cast::make(Op->NodeType, Value);
}

namespace {
template <typename T>
Expr mutateBinary(IRMutator *M, const T *Op) {
  Expr A = M->mutate(Op->A);
  Expr B = M->mutate(Op->B);
  if (A.sameAs(Op->A) && B.sameAs(Op->B))
    return Op;
  return T::make(A, B);
}
} // namespace

Expr IRMutator::visit(const Add *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Sub *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Mul *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Div *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Mod *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Min *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Max *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const EQ *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const NE *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const LT *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const LE *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const GT *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const GE *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const And *Op) { return mutateBinary(this, Op); }
Expr IRMutator::visit(const Or *Op) { return mutateBinary(this, Op); }

Expr IRMutator::visit(const Not *Op) {
  Expr A = mutate(Op->A);
  if (A.sameAs(Op->A))
    return Op;
  return Not::make(A);
}

Expr IRMutator::visit(const Select *Op) {
  Expr Condition = mutate(Op->Condition);
  Expr TrueValue = mutate(Op->TrueValue);
  Expr FalseValue = mutate(Op->FalseValue);
  if (Condition.sameAs(Op->Condition) && TrueValue.sameAs(Op->TrueValue) &&
      FalseValue.sameAs(Op->FalseValue))
    return Op;
  return Select::make(Condition, TrueValue, FalseValue);
}

Expr IRMutator::visit(const Load *Op) {
  Expr Index = mutate(Op->Index);
  if (Index.sameAs(Op->Index))
    return Op;
  return Load::make(Op->NodeType.withLanes(Index.type().Lanes), Op->Name,
                    Index);
}

Expr IRMutator::visit(const Ramp *Op) {
  Expr Base = mutate(Op->Base);
  Expr Stride = mutate(Op->Stride);
  if (Base.sameAs(Op->Base) && Stride.sameAs(Op->Stride))
    return Op;
  return Ramp::make(Base, Stride, Op->Lanes);
}

Expr IRMutator::visit(const Broadcast *Op) {
  Expr Value = mutate(Op->Value);
  if (Value.sameAs(Op->Value))
    return Op;
  return Broadcast::make(Value, Op->Lanes);
}

Expr IRMutator::visit(const Call *Op) {
  std::vector<Expr> NewArgs(Op->Args.size());
  bool Changed = false;
  for (size_t I = 0; I < Op->Args.size(); ++I) {
    NewArgs[I] = mutate(Op->Args[I]);
    Changed |= !NewArgs[I].sameAs(Op->Args[I]);
  }
  if (!Changed)
    return Op;
  return Call::make(Op->NodeType, Op->Name, std::move(NewArgs), Op->CallKind);
}

Expr IRMutator::visit(const Let *Op) {
  Expr Value = mutate(Op->Value);
  Expr Body = mutate(Op->Body);
  if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
    return Op;
  return Let::make(Op->Name, Value, Body);
}

Stmt IRMutator::visit(const LetStmt *Op) {
  Expr Value = mutate(Op->Value);
  Stmt Body = mutate(Op->Body);
  if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
    return Op;
  return LetStmt::make(Op->Name, Value, Body);
}

Stmt IRMutator::visit(const AssertStmt *Op) {
  Expr Condition = mutate(Op->Condition);
  if (Condition.sameAs(Op->Condition))
    return Op;
  return AssertStmt::make(Condition, Op->Message);
}

Stmt IRMutator::visit(const ProducerConsumer *Op) {
  Stmt Body = mutate(Op->Body);
  if (Body.sameAs(Op->Body))
    return Op;
  return ProducerConsumer::make(Op->Name, Op->IsProducer, Body);
}

Stmt IRMutator::visit(const For *Op) {
  Expr MinExpr = mutate(Op->MinExpr);
  Expr Extent = mutate(Op->Extent);
  Stmt Body = mutate(Op->Body);
  if (MinExpr.sameAs(Op->MinExpr) && Extent.sameAs(Op->Extent) &&
      Body.sameAs(Op->Body))
    return Op;
  return For::make(Op->Name, MinExpr, Extent, Op->Kind, Body);
}

Stmt IRMutator::visit(const Store *Op) {
  Expr Value = mutate(Op->Value);
  Expr Index = mutate(Op->Index);
  if (Value.sameAs(Op->Value) && Index.sameAs(Op->Index))
    return Op;
  return Store::make(Op->Name, Value, Index);
}

Stmt IRMutator::visit(const Provide *Op) {
  Expr Value = mutate(Op->Value);
  std::vector<Expr> NewArgs(Op->Args.size());
  bool Changed = !Value.sameAs(Op->Value);
  for (size_t I = 0; I < Op->Args.size(); ++I) {
    NewArgs[I] = mutate(Op->Args[I]);
    Changed |= !NewArgs[I].sameAs(Op->Args[I]);
  }
  if (!Changed)
    return Op;
  return Provide::make(Op->Name, Value, std::move(NewArgs));
}

Stmt IRMutator::visit(const Allocate *Op) {
  std::vector<Expr> NewExtents(Op->Extents.size());
  bool Changed = false;
  for (size_t I = 0; I < Op->Extents.size(); ++I) {
    NewExtents[I] = mutate(Op->Extents[I]);
    Changed |= !NewExtents[I].sameAs(Op->Extents[I]);
  }
  Stmt Body = mutate(Op->Body);
  Changed |= !Body.sameAs(Op->Body);
  if (!Changed)
    return Op;
  return Allocate::make(Op->Name, Op->ElemType, std::move(NewExtents), Body,
                        Op->InSharedMemory);
}

Stmt IRMutator::visit(const Realize *Op) {
  Region NewBounds(Op->Bounds.size());
  bool Changed = false;
  for (size_t I = 0; I < Op->Bounds.size(); ++I) {
    NewBounds[I].Min = mutate(Op->Bounds[I].Min);
    NewBounds[I].Extent = mutate(Op->Bounds[I].Extent);
    Changed |= !NewBounds[I].Min.sameAs(Op->Bounds[I].Min) ||
               !NewBounds[I].Extent.sameAs(Op->Bounds[I].Extent);
  }
  Stmt Body = mutate(Op->Body);
  Changed |= !Body.sameAs(Op->Body);
  if (!Changed)
    return Op;
  return Realize::make(Op->Name, Op->ElemType, std::move(NewBounds), Body);
}

Stmt IRMutator::visit(const Block *Op) {
  Stmt First = mutate(Op->First);
  Stmt Rest = mutate(Op->Rest);
  if (First.sameAs(Op->First) && Rest.sameAs(Op->Rest))
    return Op;
  return Block::make(First, Rest);
}

Stmt IRMutator::visit(const IfThenElse *Op) {
  Expr Condition = mutate(Op->Condition);
  Stmt ThenCase = mutate(Op->ThenCase);
  Stmt ElseCase = mutate(Op->ElseCase);
  if (Condition.sameAs(Op->Condition) && ThenCase.sameAs(Op->ThenCase) &&
      ElseCase.sameAs(Op->ElseCase))
    return Op;
  return IfThenElse::make(Condition, ThenCase, ElseCase);
}

Stmt IRMutator::visit(const Evaluate *Op) {
  Expr Value = mutate(Op->Value);
  if (Value.sameAs(Op->Value))
    return Op;
  return Evaluate::make(Value);
}
