//===-- analysis/Interval.cpp -----------------------------------------------=//

#include "analysis/Interval.h"
#include "ir/IREquality.h"
#include "ir/IROperators.h"

using namespace halide;

bool Interval::isSinglePoint() const {
  return Min.defined() && Max.defined() && equal(Min, Max);
}

void Interval::include(const Interval &Other) { *this = intervalUnion(*this, Other); }

void Interval::intersect(const Interval &Other) {
  *this = intervalIntersection(*this, Other);
}

Interval halide::intervalUnion(const Interval &A, const Interval &B) {
  Interval Result;
  if (A.hasLowerBound() && B.hasLowerBound())
    Result.Min = min(A.Min, B.Min);
  if (A.hasUpperBound() && B.hasUpperBound())
    Result.Max = max(A.Max, B.Max);
  return Result;
}

Interval halide::intervalIntersection(const Interval &A, const Interval &B) {
  Interval Result;
  if (A.hasLowerBound() && B.hasLowerBound())
    Result.Min = max(A.Min, B.Min);
  else
    Result.Min = A.hasLowerBound() ? A.Min : B.Min;
  if (A.hasUpperBound() && B.hasUpperBound())
    Result.Max = min(A.Max, B.Max);
  else
    Result.Max = A.hasUpperBound() ? A.Max : B.Max;
  return Result;
}

void Box::include(const Box &Other) {
  // A rank-0 box means "nothing accumulated yet": adopt the other box whole.
  if (Dims.empty()) {
    Dims = Other.Dims;
    return;
  }
  if (Other.Dims.empty())
    return;
  internal_assert(Dims.size() == Other.Dims.size())
      << "union of boxes of different rank";
  for (size_t I = 0; I < Dims.size(); ++I)
    Dims[I].include(Other.Dims[I]);
}
