//===-- analysis/Interval.cpp -----------------------------------------------=//

#include "analysis/Interval.h"
#include "ir/IREquality.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

#include <set>

using namespace halide;

bool Interval::isSinglePoint() const {
  return Min.defined() && Max.defined() && equal(Min, Max);
}

void Interval::include(const Interval &Other) { *this = intervalUnion(*this, Other); }

void Interval::intersect(const Interval &Other) {
  *this = intervalIntersection(*this, Other);
}

Interval halide::intervalUnion(const Interval &A, const Interval &B) {
  Interval Result;
  if (A.hasLowerBound() && B.hasLowerBound())
    Result.Min = min(A.Min, B.Min);
  if (A.hasUpperBound() && B.hasUpperBound())
    Result.Max = max(A.Max, B.Max);
  return Result;
}

Interval halide::intervalIntersection(const Interval &A, const Interval &B) {
  Interval Result;
  if (A.hasLowerBound() && B.hasLowerBound())
    Result.Min = max(A.Min, B.Min);
  else
    Result.Min = A.hasLowerBound() ? A.Min : B.Min;
  if (A.hasUpperBound() && B.hasUpperBound())
    Result.Max = min(A.Max, B.Max);
  else
    Result.Max = A.hasUpperBound() ? A.Max : B.Max;
  return Result;
}

void Box::include(const Box &Other) {
  // A rank-0 box means "nothing accumulated yet": adopt the other box whole.
  if (Dims.empty()) {
    Dims = Other.Dims;
    return;
  }
  if (Other.Dims.empty())
    return;
  internal_assert(Dims.size() == Other.Dims.size())
      << "union of boxes of different rank";
  for (size_t I = 0; I < Dims.size(); ++I)
    Dims[I].include(Other.Dims[I]);
}

//===----------------------------------------------------------------------===//
// ExprLedger: the bounds-sharing layer.
//===----------------------------------------------------------------------===//

BoundsStatistics &halide::detail::boundsSharingCounters() {
  static BoundsStatistics Counters;
  return Counters;
}

namespace {

/// Endpoints at or under this many IR nodes are duplicated at each use
/// site; anything larger gets a ledger name. Small expressions must stay
/// inline so the classic folding patterns (constant spans, monotonic
/// marching mins) keep firing for shallow pipelines exactly as before the
/// sharing layer existed.
constexpr size_t InlineNodeLimit = 16;

/// Collects the ledger names an expression references (without respecting
/// Let shadowing: ledger names are globally unique, so a shadowed
/// occurrence can only rebind the same definition).
class LedgerNameCollector : public IRVisitor {
public:
  LedgerNameCollector(const std::map<std::string, size_t> &Index,
                      std::set<std::string> *Used)
      : Index(Index), Used(Used) {}

  void visit(const Variable *Op) override {
    if (Index.count(Op->Name))
      Used->insert(Op->Name);
  }

private:
  const std::map<std::string, size_t> &Index;
  std::set<std::string> *Used;
};

} // namespace

bool ExprLedger::smallEnoughToInline(const Expr &E) {
  // Capped walk: deciding "bigger than the limit?" costs O(limit) even on
  // the enormous first-encounter endpoints this layer exists to tame.
  return !irNodeCountExceeds(E, InlineNodeLimit);
}

std::string ExprLedger::intern(const Expr &E, const std::string &Hint) {
  auto It = Memo.find(E);
  if (It != Memo.end()) {
    ++detail::boundsSharingCounters().CacheHits;
    return It->second;
  }
  ++detail::boundsSharingCounters().CacheMisses;
  std::string Name = uniqueName(Hint + ".shared$");
  Memo.emplace(E, Name);
  IndexByName[Name] = Defs.size();
  Defs.emplace_back(Name, E);
  return Name;
}

Expr ExprLedger::shared(const Expr &E, const std::string &Hint) {
  if (!E.defined())
    return E;
  // Canonicalize before the size check and the memo lookup: simplification
  // both shrinks borderline expressions under the inline threshold and
  // makes structurally different spellings of the same value collide.
  Expr Canon = simplify(E);
  if (smallEnoughToInline(Canon)) {
    ++detail::boundsSharingCounters().EndpointsInlined;
    return Canon;
  }
  return Variable::make(Canon.type(), intern(Canon, Hint));
}

Interval ExprLedger::shared(const Interval &I, const std::string &Hint) {
  Interval Result;
  if (I.isSinglePoint()) {
    Result.Min = shared(I.Min, Hint);
    Result.Max = Result.Min;
    return Result;
  }
  Result.Min = shared(I.Min, Hint + ".min");
  Result.Max = shared(I.Max, Hint + ".max");
  return Result;
}

Expr ExprLedger::materialize(const Expr &E) const {
  if (!E.defined() || Defs.empty())
    return E;
  std::set<std::string> Needed;
  LedgerNameCollector Collector(IndexByName, &Needed);
  E.accept(&Collector);
  if (Needed.empty())
    return E;
  // Wrap latest-created definitions innermost: a definition may reference
  // earlier names, which the backward walk then discovers and wraps
  // further out.
  Expr Result = E;
  for (size_t I = Defs.size(); I-- > 0;) {
    const auto &[Name, Def] = Defs[I];
    if (!Needed.count(Name))
      continue;
    Result = Let::make(Name, Def, Result);
    ++detail::boundsSharingCounters().LetsEmitted;
    Def.accept(&Collector);
  }
  return Result;
}

Interval ExprLedger::materialize(const Interval &I) const {
  return Interval(materialize(I.Min), materialize(I.Max));
}

void ExprLedger::substituteInDefs(const std::map<std::string, Expr> &Bindings) {
  if (Bindings.empty())
    return;
  for (auto &Entry : Defs)
    Entry.second = substitute(Bindings, Entry.second);
  Memo.clear();
}
