//===-- analysis/Scope.h - Lexically scoped symbol tables -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stack-of-bindings symbol table keyed by variable name, used by every
/// pass that walks under Let/LetStmt/For nodes.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_SCOPE_H
#define HALIDE_ANALYSIS_SCOPE_H

#include "support/Util.h"

#include <map>
#include <string>
#include <vector>

namespace halide {

/// A map from names to stacks of values of type T; inner bindings shadow
/// outer ones.
template <typename T> class Scope {
public:
  bool contains(const std::string &Name) const {
    auto It = Table.find(Name);
    return It != Table.end() && !It->second.empty();
  }

  const T &get(const std::string &Name) const {
    auto It = Table.find(Name);
    internal_assert(It != Table.end() && !It->second.empty())
        << "Scope::get of unbound name " << Name;
    return It->second.back();
  }

  void push(const std::string &Name, T Value) {
    Table[Name].push_back(std::move(Value));
  }

  void pop(const std::string &Name) {
    auto It = Table.find(Name);
    internal_assert(It != Table.end() && !It->second.empty())
        << "Scope::pop of unbound name " << Name;
    It->second.pop_back();
  }

  bool empty() const {
    for (const auto &Entry : Table)
      if (!Entry.second.empty())
        return false;
    return true;
  }

private:
  std::map<std::string, std::vector<T>> Table;
};

/// RAII helper that pushes a binding for the lifetime of a block.
template <typename T> class ScopedBinding {
public:
  ScopedBinding(Scope<T> &S, const std::string &Name, T Value)
      : TheScope(&S), Name(Name) {
    TheScope->push(Name, std::move(Value));
  }
  ScopedBinding(const ScopedBinding &) = delete;
  ScopedBinding &operator=(const ScopedBinding &) = delete;
  ~ScopedBinding() { TheScope->pop(Name); }

private:
  Scope<T> *TheScope;
  std::string Name;
};

} // namespace halide

#endif // HALIDE_ANALYSIS_SCOPE_H
