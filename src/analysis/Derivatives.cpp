//===-- analysis/Derivatives.cpp ---------------------------------------------=//

#include "analysis/Derivatives.h"
#include "analysis/Scope.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"

using namespace halide;

namespace {

/// Detects free uses of a set of variables.
class VarUseVisitor : public IRVisitor {
public:
  explicit VarUseVisitor(const std::set<std::string> &Targets)
      : Targets(Targets) {}

  bool Found = false;

  void visit(const Variable *Op) override {
    if (Shadowed.contains(Op->Name))
      return;
    if (Targets.count(Op->Name))
      Found = true;
  }

  void visit(const Let *Op) override {
    Op->Value.accept(this);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Op->Body.accept(this);
  }

  void visit(const LetStmt *Op) override {
    Op->Value.accept(this);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Op->Body.accept(this);
  }

private:
  const std::set<std::string> &Targets;
  Scope<int> Shadowed;
};

/// Collects all free variable names.
class FreeVarVisitor : public IRVisitor {
public:
  std::set<std::string> Names;

  void visit(const Variable *Op) override {
    if (!Shadowed.contains(Op->Name))
      Names.insert(Op->Name);
  }

  void visit(const Let *Op) override {
    Op->Value.accept(this);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Op->Body.accept(this);
  }

private:
  Scope<int> Shadowed;
};

} // namespace

bool halide::exprUsesVar(const Expr &E, const std::string &Var) {
  std::set<std::string> Targets = {Var};
  VarUseVisitor Visitor(Targets);
  if (E.defined())
    E.accept(&Visitor);
  return Visitor.Found;
}

bool halide::exprUsesVars(const Expr &E, const std::set<std::string> &Vars) {
  VarUseVisitor Visitor(Vars);
  if (E.defined())
    E.accept(&Visitor);
  return Visitor.Found;
}

bool halide::stmtUsesVar(const Stmt &S, const std::string &Var) {
  std::set<std::string> Targets = {Var};
  VarUseVisitor Visitor(Targets);
  if (S.defined())
    S.accept(&Visitor);
  return Visitor.Found;
}

std::set<std::string> halide::freeVars(const Expr &E) {
  FreeVarVisitor Visitor;
  if (E.defined())
    E.accept(&Visitor);
  return Visitor.Names;
}

namespace {

/// Recursive affine solver. Returns false when the expression is not
/// provably affine in the variable.
bool solveStride(const Expr &E, const std::string &Var, int64_t *Stride) {
  if (!exprUsesVar(E, Var)) {
    *Stride = 0;
    return true;
  }
  if (const Variable *V = E.as<Variable>()) {
    if (V->Name == Var) {
      *Stride = 1;
      return true;
    }
    *Stride = 0;
    return true;
  }
  if (const Add *Op = E.as<Add>()) {
    int64_t SA, SB;
    if (solveStride(Op->A, Var, &SA) && solveStride(Op->B, Var, &SB)) {
      *Stride = SA + SB;
      return true;
    }
    return false;
  }
  if (const Sub *Op = E.as<Sub>()) {
    int64_t SA, SB;
    if (solveStride(Op->A, Var, &SA) && solveStride(Op->B, Var, &SB)) {
      *Stride = SA - SB;
      return true;
    }
    return false;
  }
  if (const Mul *Op = E.as<Mul>()) {
    int64_t C;
    int64_t S;
    if (asConstInt(Op->A, &C) && solveStride(Op->B, Var, &S)) {
      *Stride = C * S;
      return true;
    }
    if (asConstInt(Op->B, &C) && solveStride(Op->A, Var, &S)) {
      *Stride = C * S;
      return true;
    }
    return false;
  }
  if (const Cast *Op = E.as<Cast>()) {
    // Casts between integer types of sufficient width preserve affinity.
    Type From = Op->Value.type(), To = Op->NodeType;
    if ((From.isInt() || From.isUInt()) && (To.isInt() || To.isUInt()) &&
        To.Bits >= From.Bits)
      return solveStride(Op->Value, Var, Stride);
    return false;
  }
  if (const Let *Op = E.as<Let>()) {
    // Conservative: only handle lets whose value does not use the variable.
    if (!exprUsesVar(Op->Value, Var))
      return solveStride(Op->Body, Var, Stride);
    return false;
  }
  return false;
}

} // namespace

bool halide::affineStride(const Expr &E, const std::string &Var,
                          int64_t *Stride) {
  internal_assert(E.defined()) << "affineStride of undef";
  return solveStride(E, Var, Stride);
}
