//===-- analysis/Interval.h - Symbolic intervals ----------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic intervals [Min, Max] whose endpoints are Exprs (possibly
/// undefined, meaning unbounded in that direction). This is the "simple
/// interval analysis" the paper (sections 1.2, 4.2) uses in place of the
/// polyhedral model: less expressive — only axis-aligned boxes — but able to
/// bound a much wider class of expressions.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_INTERVAL_H
#define HALIDE_ANALYSIS_INTERVAL_H

#include "ir/Expr.h"
#include "ir/IREquality.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace halide {

/// A closed symbolic interval. An undefined endpoint means unbounded on that
/// side; Interval() is the "everything" interval.
struct Interval {
  Expr Min, Max;

  Interval() = default;
  Interval(Expr Min, Expr Max) : Min(Min), Max(Max) {}

  /// The degenerate interval containing exactly one point.
  static Interval single(Expr Point) { return Interval(Point, Point); }
  /// The unbounded interval.
  static Interval everything() { return Interval(); }

  bool hasLowerBound() const { return Min.defined(); }
  bool hasUpperBound() const { return Max.defined(); }
  bool isBounded() const { return hasLowerBound() && hasUpperBound(); }
  /// True if both bounds are defined and structurally identical.
  bool isSinglePoint() const;
  /// True if neither bound is defined.
  bool isEverything() const { return !Min.defined() && !Max.defined(); }

  /// Widens this interval to include \p Other (set union, conservatively).
  void include(const Interval &Other);
  /// Narrows this interval to the intersection with \p Other.
  void intersect(const Interval &Other);
};

/// Union of two intervals (smallest interval containing both).
Interval intervalUnion(const Interval &A, const Interval &B);
/// Intersection of two intervals.
Interval intervalIntersection(const Interval &A, const Interval &B);

/// Counters for the bounds-sharing layer; read through Bounds::statistics().
struct BoundsStatistics {
  /// intern() found a structurally identical definition and reused its name.
  uint64_t CacheHits = 0;
  /// intern() recorded a new shared definition.
  uint64_t CacheMisses = 0;
  /// Endpoints small enough to duplicate instead of name.
  uint64_t EndpointsInlined = 0;
  /// Let nodes wrapped around results by materialize().
  uint64_t LetsEmitted = 0;
};

namespace detail {
/// Process-wide counters behind Bounds::statistics(); reset through
/// Bounds::resetStatistics().
BoundsStatistics &boundsSharingCounters();
} // namespace detail

/// The hash-consing/memo layer under interval analysis. Every let binding
/// and loop range a bounds walk crosses registers its endpoint expressions
/// here; anything larger than a hand-countable expression is replaced by a
/// fresh Variable whose definition the ledger records, and structurally
/// identical values (keyed on their canonicalized form) resolve to the same
/// name. Intervals built on top of these names stay small no matter how
/// often an endpoint is reused, which is what keeps bounds inference
/// polynomial in pipeline depth: the repeated subtrees that used to grow
/// exponentially on deep pyramids (paper section 4.2) become references
/// into this ledger instead.
///
/// Expressions returned while a ledger is in play are "raw": they may
/// reference ledger names. materialize() makes them self-contained again by
/// wrapping them in Let definitions, emitted in creation order (a later
/// definition may reference an earlier one, never the reverse).
class ExprLedger {
public:
  /// Returns a stand-in for \p E: the expression itself when it is small
  /// enough that duplicating beats naming, otherwise a Variable bound to a
  /// ledger definition. Structurally identical values share one name (a
  /// cache hit). \p Hint seeds the generated name for readable IR.
  Expr shared(const Expr &E, const std::string &Hint);

  /// Endpoint-wise shared(); single-point intervals intern one definition
  /// and reference it from both ends. Undefined endpoints stay undefined.
  Interval shared(const Interval &I, const std::string &Hint);

  /// Wraps \p E in Let bindings for every ledger definition it transitively
  /// references, producing a self-contained expression.
  Expr materialize(const Expr &E) const;
  Interval materialize(const Interval &I) const;

  /// Rewrites every recorded definition through the given substitution
  /// (bounds inference resolves a stage's self-referential region
  /// variables this way). Invalidates the structural memo.
  void substituteInDefs(const std::map<std::string, Expr> &Bindings);

  bool contains(const std::string &Name) const {
    return IndexByName.count(Name) != 0;
  }

  /// Definitions in creation order.
  const std::vector<std::pair<std::string, Expr>> &defs() const {
    return Defs;
  }

  /// True when \p E is cheaper to duplicate at each use site than to bind
  /// to a name (node count at or under a small threshold). Exposed so
  /// passes that pattern-match bounds expressions can predict which values
  /// the sharing layer leaves inline.
  static bool smallEnoughToInline(const Expr &E);

private:
  std::string intern(const Expr &E, const std::string &Hint);

  std::vector<std::pair<std::string, Expr>> Defs;
  std::map<std::string, size_t> IndexByName;
  std::map<Expr, std::string, ExprCompare> Memo;
};

/// A multidimensional box: one interval per dimension. The unit of region
/// reasoning in bounds inference ("axis-aligned bounding regions", paper
/// section 3.2).
struct Box {
  std::vector<Interval> Dims;

  Box() = default;
  explicit Box(size_t N) : Dims(N) {}

  size_t size() const { return Dims.size(); }
  bool empty() const { return Dims.empty(); }
  Interval &operator[](size_t I) { return Dims[I]; }
  const Interval &operator[](size_t I) const { return Dims[I]; }

  /// Dimension-wise union, resizing to the larger rank.
  void include(const Box &Other);
};

} // namespace halide

#endif // HALIDE_ANALYSIS_INTERVAL_H
