//===-- analysis/Interval.h - Symbolic intervals ----------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic intervals [Min, Max] whose endpoints are Exprs (possibly
/// undefined, meaning unbounded in that direction). This is the "simple
/// interval analysis" the paper (sections 1.2, 4.2) uses in place of the
/// polyhedral model: less expressive — only axis-aligned boxes — but able to
/// bound a much wider class of expressions.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_INTERVAL_H
#define HALIDE_ANALYSIS_INTERVAL_H

#include "ir/Expr.h"

#include <vector>

namespace halide {

/// A closed symbolic interval. An undefined endpoint means unbounded on that
/// side; Interval() is the "everything" interval.
struct Interval {
  Expr Min, Max;

  Interval() = default;
  Interval(Expr Min, Expr Max) : Min(Min), Max(Max) {}

  /// The degenerate interval containing exactly one point.
  static Interval single(Expr Point) { return Interval(Point, Point); }
  /// The unbounded interval.
  static Interval everything() { return Interval(); }

  bool hasLowerBound() const { return Min.defined(); }
  bool hasUpperBound() const { return Max.defined(); }
  bool isBounded() const { return hasLowerBound() && hasUpperBound(); }
  /// True if both bounds are defined and structurally identical.
  bool isSinglePoint() const;
  /// True if neither bound is defined.
  bool isEverything() const { return !Min.defined() && !Max.defined(); }

  /// Widens this interval to include \p Other (set union, conservatively).
  void include(const Interval &Other);
  /// Narrows this interval to the intersection with \p Other.
  void intersect(const Interval &Other);
};

/// Union of two intervals (smallest interval containing both).
Interval intervalUnion(const Interval &A, const Interval &B);
/// Intersection of two intervals.
Interval intervalIntersection(const Interval &A, const Interval &B);

/// A multidimensional box: one interval per dimension. The unit of region
/// reasoning in bounds inference ("axis-aligned bounding regions", paper
/// section 3.2).
struct Box {
  std::vector<Interval> Dims;

  Box() = default;
  explicit Box(size_t N) : Dims(N) {}

  size_t size() const { return Dims.size(); }
  bool empty() const { return Dims.empty(); }
  Interval &operator[](size_t I) { return Dims[I]; }
  const Interval &operator[](size_t I) const { return Dims[I]; }

  /// Dimension-wise union, resizing to the larger rank.
  void include(const Box &Other);
};

} // namespace halide

#endif // HALIDE_ANALYSIS_INTERVAL_H
