//===-- analysis/Monotonic.cpp ----------------------------------------------=//

#include "analysis/Monotonic.h"
#include "analysis/Scope.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"

using namespace halide;

const char *halide::monotonicName(Monotonic M) {
  switch (M) {
  case Monotonic::Constant:
    return "constant";
  case Monotonic::Increasing:
    return "increasing";
  case Monotonic::Decreasing:
    return "decreasing";
  case Monotonic::Unknown:
    return "unknown";
  }
  return "unknown";
}

namespace {

Monotonic flip(Monotonic M) {
  if (M == Monotonic::Increasing)
    return Monotonic::Decreasing;
  if (M == Monotonic::Decreasing)
    return Monotonic::Increasing;
  return M;
}

/// Combination for addition: agreeing directions survive, Constant is the
/// identity, anything else is Unknown.
Monotonic unify(Monotonic A, Monotonic B) {
  if (A == Monotonic::Constant)
    return B;
  if (B == Monotonic::Constant)
    return A;
  if (A == B && A != Monotonic::Unknown)
    return A;
  return Monotonic::Unknown;
}

class MonotonicVisitor : public IRVisitor {
public:
  explicit MonotonicVisitor(const std::string &Var,
                            const Scope<Monotonic> *Known = nullptr)
      : Var(Var), Known(Known) {}

  Monotonic analyze(const Expr &E) {
    E.accept(this);
    return Result;
  }

  void visit(const IntImm *) override { Result = Monotonic::Constant; }
  void visit(const UIntImm *) override { Result = Monotonic::Constant; }
  void visit(const FloatImm *) override { Result = Monotonic::Constant; }
  void visit(const StringImm *) override { Result = Monotonic::Constant; }

  void visit(const Variable *Op) override {
    if (Op->Name == Var) {
      Result = Monotonic::Increasing;
      return;
    }
    if (Lets.contains(Op->Name)) {
      Result = Lets.get(Op->Name);
      return;
    }
    if (Known && Known->contains(Op->Name)) {
      Result = Known->get(Op->Name);
      return;
    }
    Result = Monotonic::Constant;
  }

  void visit(const Cast *Op) override {
    Monotonic A = analyze(Op->Value);
    Type From = Op->Value.type(), To = Op->NodeType;
    // Widening casts and int->float preserve order; others may wrap.
    bool OrderPreserving =
        (To.isFloat() && !From.isFloat()) ||
        (To.isFloat() && From.isFloat() && To.Bits >= From.Bits) ||
        ((To.isInt() || To.isUInt()) && (From.isInt() || From.isUInt()) &&
         To.Bits >= From.Bits && !(From.isInt() && To.isUInt()));
    Result = OrderPreserving ? A
             : (A == Monotonic::Constant ? Monotonic::Constant
                                         : Monotonic::Unknown);
  }

  void visit(const Add *Op) override {
    Result = unify(analyze(Op->A), analyze(Op->B));
  }

  void visit(const Sub *Op) override {
    Result = unify(analyze(Op->A), flip(analyze(Op->B)));
  }

  void visit(const Mul *Op) override {
    Monotonic A = analyze(Op->A), B = analyze(Op->B);
    if (A == Monotonic::Constant && B == Monotonic::Constant) {
      Result = Monotonic::Constant;
      return;
    }
    if (B == Monotonic::Constant && isConst(Op->B)) {
      Result = isNegativeConst(Op->B) ? flip(A) : A;
      return;
    }
    if (A == Monotonic::Constant && isConst(Op->A)) {
      Result = isNegativeConst(Op->A) ? flip(B) : B;
      return;
    }
    Result = Monotonic::Unknown;
  }

  void visit(const Div *Op) override {
    Monotonic A = analyze(Op->A), B = analyze(Op->B);
    if (A == Monotonic::Constant && B == Monotonic::Constant) {
      Result = Monotonic::Constant;
      return;
    }
    // Floor division by a positive constant preserves (weak) monotonicity.
    if (B == Monotonic::Constant && isPositiveConst(Op->B)) {
      Result = A;
      return;
    }
    if (B == Monotonic::Constant && isNegativeConst(Op->B)) {
      Result = flip(A);
      return;
    }
    Result = Monotonic::Unknown;
  }

  void visit(const Mod *Op) override {
    Monotonic A = analyze(Op->A), B = analyze(Op->B);
    Result = (A == Monotonic::Constant && B == Monotonic::Constant)
                 ? Monotonic::Constant
                 : Monotonic::Unknown;
  }

  void visit(const Min *Op) override {
    Result = monotonicOfPair(Op->A, Op->B);
  }
  void visit(const Max *Op) override {
    Result = monotonicOfPair(Op->A, Op->B);
  }

  void visit(const EQ *Op) override { compareResult(Op->A, Op->B); }
  void visit(const NE *Op) override { compareResult(Op->A, Op->B); }
  void visit(const LT *Op) override { compareResult(Op->A, Op->B); }
  void visit(const LE *Op) override { compareResult(Op->A, Op->B); }
  void visit(const GT *Op) override { compareResult(Op->A, Op->B); }
  void visit(const GE *Op) override { compareResult(Op->A, Op->B); }
  void visit(const And *Op) override { compareResult(Op->A, Op->B); }
  void visit(const Or *Op) override { compareResult(Op->A, Op->B); }
  void visit(const Not *Op) override { compareResult(Op->A, Op->A); }

  void visit(const Select *Op) override {
    Monotonic C = analyze(Op->Condition);
    Monotonic T = analyze(Op->TrueValue);
    Monotonic F = analyze(Op->FalseValue);
    if (C == Monotonic::Constant) {
      Result = unify(T, F) == Monotonic::Unknown && T != F
                   ? Monotonic::Unknown
                   : unify(T, F);
      return;
    }
    Result = Monotonic::Unknown;
  }

  void visit(const Load *Op) override {
    Result = analyze(Op->Index) == Monotonic::Constant ? Monotonic::Constant
                                                       : Monotonic::Unknown;
  }

  void visit(const Ramp *Op) override {
    Result = unify(analyze(Op->Base), analyze(Op->Stride));
    if (Result != Monotonic::Constant)
      Result = Monotonic::Unknown;
  }

  void visit(const Broadcast *Op) override { Result = analyze(Op->Value); }

  void visit(const Call *Op) override {
    // floor/ceil/round are weakly monotonic; other calls are constant only
    // if all args are constant.
    bool MonotonePreserving =
        Op->CallKind == CallType::PureExtern &&
        (Op->Name == "floor" || Op->Name == "ceil" || Op->Name == "round" ||
         Op->Name == "sqrt" || Op->Name == "exp" || Op->Name == "log");
    Monotonic Combined = Monotonic::Constant;
    for (const Expr &Arg : Op->Args)
      Combined = unify(Combined, analyze(Arg));
    if (Combined == Monotonic::Constant) {
      Result = Monotonic::Constant;
      return;
    }
    Result = MonotonePreserving ? Combined : Monotonic::Unknown;
  }

  void visit(const Let *Op) override {
    Monotonic ValueMono = analyze(Op->Value);
    ScopedBinding<Monotonic> Bind(Lets, Op->Name, ValueMono);
    Result = analyze(Op->Body);
  }

private:
  Monotonic monotonicOfPair(const Expr &A, const Expr &B) {
    Monotonic MA = analyze(A), MB = analyze(B);
    if (MA == Monotonic::Constant && MB == Monotonic::Constant)
      return Monotonic::Constant;
    // min/max of two expressions moving the same way moves that way.
    Monotonic U = unify(MA, MB);
    return U;
  }

  void compareResult(const Expr &A, const Expr &B) {
    Monotonic MA = analyze(A), MB = analyze(B);
    Result = (MA == Monotonic::Constant && MB == Monotonic::Constant)
                 ? Monotonic::Constant
                 : Monotonic::Unknown;
  }

  const std::string &Var;
  const Scope<Monotonic> *Known;
  Scope<Monotonic> Lets;
  Monotonic Result = Monotonic::Unknown;
};

} // namespace

Monotonic halide::isMonotonic(const Expr &E, const std::string &Var) {
  if (!E.defined())
    return Monotonic::Unknown;
  MonotonicVisitor Visitor(Var);
  return Visitor.analyze(E);
}

Monotonic halide::isMonotonic(const Expr &E, const std::string &Var,
                              const Scope<Monotonic> &Known) {
  if (!E.defined())
    return Monotonic::Unknown;
  MonotonicVisitor Visitor(Var, &Known);
  return Visitor.analyze(E);
}
