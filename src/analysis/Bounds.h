//===-- analysis/Bounds.h - Bounds of expressions and regions ---*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval analysis over arbitrary expressions (paper section 4.2): computes
/// symbolic [min, max] bounds of an expression given intervals for the free
/// variables, and the axis-aligned boxes of regions read from / written to a
/// given stage within a statement. Bounds inference, sliding window
/// optimization, and storage folding are all built on these entry points.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_BOUNDS_H
#define HALIDE_ANALYSIS_BOUNDS_H

#include "analysis/Interval.h"
#include "analysis/Scope.h"

#include <map>
#include <string>

namespace halide {

/// Process-wide observability for the bounds-sharing layer (the ExprLedger
/// in Interval.h): how often interval endpoints were interned, reused, or
/// left inline. Tests assert on these counters to keep the sharing layer
/// honest; they are diagnostics, not part of any result.
class Bounds {
public:
  static BoundsStatistics statistics();
  static void resetStatistics();
};

/// Computes a symbolic interval containing every value \p E can take, given
/// intervals for free variables in \p VarScope. Variables not in scope are
/// treated as unknown points: they appear symbolically in the result, which
/// is what lets bounds inference emit per-loop-level preambles. Results are
/// conservative (may over-approximate) but never under-approximate.
///
/// All entry points below share subexpressions while they infer: every let
/// binding and loop range crossed is bound to a ledger name instead of
/// being re-expanded at each use, which keeps result sizes polynomial in
/// pipeline depth. With \p Ledger null the result is materialized into a
/// self-contained expression (ledger definitions become Let wrappers).
/// Passing a ledger returns *raw* intervals that may reference its names;
/// the caller decides where the definitions land — bounds inference emits
/// them once as real LetStmts wrapping each stage's produce node.
Interval boundsOfExprInScope(const Expr &E, const Scope<Interval> &VarScope,
                             ExprLedger *Ledger = nullptr);

/// The region of the Func or image named \p Name read by calls within \p S.
/// Loop variables and lets bound inside \p S are ranged over; variables
/// bound outside remain symbolic in the result.
Box boxRequired(const Stmt &S, const std::string &Name,
                const Scope<Interval> &VarScope, ExprLedger *Ledger = nullptr);

/// Same, for calls appearing in an expression.
Box boxRequired(const Expr &E, const std::string &Name,
                const Scope<Interval> &VarScope, ExprLedger *Ledger = nullptr);

/// The region of \p Name written by Provide nodes within \p S.
Box boxProvided(const Stmt &S, const std::string &Name,
                const Scope<Interval> &VarScope, ExprLedger *Ledger = nullptr);

/// The union of regions read or written for every Func/image touched in
/// \p S, keyed by name. Used by bounds inference to process all producers of
/// a consumer in one walk.
std::map<std::string, Box> boxesTouched(const Stmt &S,
                                        const Scope<Interval> &VarScope,
                                        bool IncludeCalls,
                                        bool IncludeProvides,
                                        ExprLedger *Ledger = nullptr);

} // namespace halide

#endif // HALIDE_ANALYSIS_BOUNDS_H
