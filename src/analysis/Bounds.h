//===-- analysis/Bounds.h - Bounds of expressions and regions ---*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval analysis over arbitrary expressions (paper section 4.2): computes
/// symbolic [min, max] bounds of an expression given intervals for the free
/// variables, and the axis-aligned boxes of regions read from / written to a
/// given stage within a statement. Bounds inference, sliding window
/// optimization, and storage folding are all built on these entry points.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_BOUNDS_H
#define HALIDE_ANALYSIS_BOUNDS_H

#include "analysis/Interval.h"
#include "analysis/Scope.h"

#include <map>
#include <string>

namespace halide {

/// Computes a symbolic interval containing every value \p E can take, given
/// intervals for free variables in \p VarScope. Variables not in scope are
/// treated as unknown points: they appear symbolically in the result, which
/// is what lets bounds inference emit per-loop-level preambles. Results are
/// conservative (may over-approximate) but never under-approximate.
Interval boundsOfExprInScope(const Expr &E, const Scope<Interval> &VarScope);

/// The region of the Func or image named \p Name read by calls within \p S.
/// Loop variables and lets bound inside \p S are ranged over; variables
/// bound outside remain symbolic in the result.
Box boxRequired(const Stmt &S, const std::string &Name,
                const Scope<Interval> &VarScope);

/// Same, for calls appearing in an expression.
Box boxRequired(const Expr &E, const std::string &Name,
                const Scope<Interval> &VarScope);

/// The region of \p Name written by Provide nodes within \p S.
Box boxProvided(const Stmt &S, const std::string &Name,
                const Scope<Interval> &VarScope);

/// The union of regions read or written for every Func/image touched in
/// \p S, keyed by name. Used by bounds inference to process all producers of
/// a consumer in one walk.
std::map<std::string, Box> boxesTouched(const Stmt &S,
                                        const Scope<Interval> &VarScope,
                                        bool IncludeCalls,
                                        bool IncludeProvides);

} // namespace halide

#endif // HALIDE_ANALYSIS_BOUNDS_H
