//===-- analysis/Monotonic.h - Monotonicity classification ------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies how an expression varies as one variable increases. The
/// sliding window optimization (paper section 4.3) may only shrink the
/// per-iteration compute region when the region's bounds march monotonically
/// with the intervening serial loop; this analysis proves that.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_MONOTONIC_H
#define HALIDE_ANALYSIS_MONOTONIC_H

#include "analysis/Scope.h"
#include "ir/Expr.h"

#include <string>

namespace halide {

/// Result of monotonicity analysis. "Increasing"/"Decreasing" are weak
/// (non-strict): the expression never moves the other way.
enum class Monotonic {
  Constant,   ///< Does not depend on the variable.
  Increasing, ///< Non-decreasing in the variable.
  Decreasing, ///< Non-increasing in the variable.
  Unknown,    ///< Could not be classified.
};

/// Classifies \p E as a function of the scalar variable \p Var.
Monotonic isMonotonic(const Expr &E, const std::string &Var);

/// Same, with known classifications for free variables bound outside the
/// expression (e.g. the shared bounds definitions the sharing layer emits
/// as enclosing LetStmts: their dependence on the loop variable is only
/// visible through \p Known). Unlisted variables are treated as constant.
Monotonic isMonotonic(const Expr &E, const std::string &Var,
                      const Scope<Monotonic> &Known);

const char *monotonicName(Monotonic M);

} // namespace halide

#endif // HALIDE_ANALYSIS_MONOTONIC_H
