//===-- analysis/Derivatives.h - Affine structure of exprs ------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable-usage queries and an affine stride solver. The vectorizer uses
/// stride information to classify vector loads as dense, strided, or
/// gathers (paper section 4.5); storage folding uses it to verify that
/// footprints march at a constant rate.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_DERIVATIVES_H
#define HALIDE_ANALYSIS_DERIVATIVES_H

#include "ir/Expr.h"

#include <set>
#include <string>

namespace halide {

/// True if the variable named \p Var occurs free in \p E (Let bindings
/// shadow).
bool exprUsesVar(const Expr &E, const std::string &Var);

/// True if any of the variables in \p Vars occurs free in \p E.
bool exprUsesVars(const Expr &E, const std::set<std::string> &Vars);

/// True if \p S references the variable (in any expression it contains).
bool stmtUsesVar(const Stmt &S, const std::string &Var);

/// Collects the names of all free variables in \p E.
std::set<std::string> freeVars(const Expr &E);

/// If \p E is affine in \p Var with a constant integer coefficient — i.e.
/// E = Stride * Var + (terms not using Var) — stores the coefficient and
/// returns true. Returns true with *Stride == 0 when E does not use Var.
bool affineStride(const Expr &E, const std::string &Var, int64_t *Stride);

} // namespace halide

#endif // HALIDE_ANALYSIS_DERIVATIVES_H
