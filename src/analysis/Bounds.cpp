//===-- analysis/Bounds.cpp -------------------------------------------------=//

#include "analysis/Bounds.h"
#include "ir/IREquality.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"

using namespace halide;

namespace {

/// Interval evaluation of expressions. One visit() per node kind; the
/// current result is kept in `Result`. Let values are bound through the
/// sharing ledger: the value's bounds are computed once, then every use of
/// the let variable sees a small stand-in (the canonicalized expression,
/// or a ledger name when it is large), never a re-expanded copy.
class BoundsVisitor : public IRVisitor {
public:
  /// \p SharedInner lets a caller walking a statement (BoxesTouched) hand
  /// its accumulated inner bindings to every nested expression walk
  /// without copying the scope per expression.
  BoundsVisitor(const Scope<Interval> &VarScope, ExprLedger *Ledger,
                Scope<Interval> *SharedInner = nullptr)
      : Ledger(Ledger), Inner(SharedInner ? SharedInner : &OwnInner),
        Outer(VarScope) {}

  Interval bounds(const Expr &E) {
    E.accept(this);
    return Result;
  }

  void visit(const IntImm *Op) override {
    Result = Interval::single(Expr(Op));
  }
  void visit(const UIntImm *Op) override {
    Result = Interval::single(Expr(Op));
  }
  void visit(const FloatImm *Op) override {
    Result = Interval::single(Expr(Op));
  }
  void visit(const StringImm *) override { Result = Interval::everything(); }

  void visit(const Variable *Op) override {
    if (Inner->contains(Op->Name)) {
      Result = Inner->get(Op->Name);
      return;
    }
    if (Outer.contains(Op->Name)) {
      Result = Outer.get(Op->Name);
      return;
    }
    // Unknown variables stay symbolic: the interval is the point [v, v].
    Result = Interval::single(Expr(Op));
  }

  void visit(const Cast *Op) override {
    Interval A = bounds(Op->Value);
    Type From = Op->Value.type().element();
    Type To = Op->NodeType.element();
    // Widening integer casts and int->float casts are monotonic: bounds cast
    // through. Anything else falls back to the target type's full range
    // (finite, so clamped gathers still get usable allocation bounds).
    bool Monotone =
        (From.isInt() || From.isUInt()) &&
        ((To.isFloat()) ||
         ((To.isInt() || To.isUInt()) && To.Bits >= From.Bits &&
          !(From.isInt() && To.isUInt())));
    if (Monotone && A.isBounded()) {
      Result = Interval(cast(To, A.Min), cast(To, A.Max));
      return;
    }
    if (To.isFloat() && A.isBounded() && From.isFloat() && To.Bits >= From.Bits) {
      Result = Interval(cast(To, A.Min), cast(To, A.Max));
      return;
    }
    if (To.isHandle()) {
      Result = Interval::everything();
      return;
    }
    Result = Interval(makeTypeMin(To), makeTypeMax(To));
  }

  void visit(const Add *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    Result.Min = (A.hasLowerBound() && B.hasLowerBound()) ? A.Min + B.Min
                                                          : Expr();
    Result.Max = (A.hasUpperBound() && B.hasUpperBound()) ? A.Max + B.Max
                                                          : Expr();
  }

  void visit(const Sub *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    Result.Min = (A.hasLowerBound() && B.hasUpperBound()) ? A.Min - B.Max
                                                          : Expr();
    Result.Max = (A.hasUpperBound() && B.hasLowerBound()) ? A.Max - B.Min
                                                          : Expr();
  }

  void visit(const Mul *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    // Scale by a single point (the common case: tile sizes, strides).
    if (B.isSinglePoint() && isConst(B.Min)) {
      scaleByConstPoint(A, B.Min);
      return;
    }
    if (A.isSinglePoint() && isConst(A.Min)) {
      scaleByConstPoint(B, A.Min);
      return;
    }
    if (A.isSinglePoint() && B.isSinglePoint()) {
      Result = Interval::single(A.Min * B.Min);
      return;
    }
    // General case: min/max over the four corners, when fully bounded.
    if (A.isBounded() && B.isBounded()) {
      Expr C0 = A.Min * B.Min, C1 = A.Min * B.Max;
      Expr C2 = A.Max * B.Min, C3 = A.Max * B.Max;
      Result.Min = min(min(C0, C1), min(C2, C3));
      Result.Max = max(max(C0, C1), max(C2, C3));
      return;
    }
    Result = Interval::everything();
  }

  void visit(const Div *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    // Only constant, nonzero divisors are handled precisely; image code
    // divides by tile sizes and pyramid strides, which are constants.
    int64_t DivisorValue;
    double DivisorFloat;
    if (B.isSinglePoint() && asConstInt(B.Min, &DivisorValue) &&
        DivisorValue != 0) {
      if (DivisorValue > 0) {
        Result.Min = A.hasLowerBound() ? A.Min / B.Min : Expr();
        Result.Max = A.hasUpperBound() ? A.Max / B.Min : Expr();
      } else {
        Result.Min = A.hasUpperBound() ? A.Max / B.Min : Expr();
        Result.Max = A.hasLowerBound() ? A.Min / B.Min : Expr();
      }
      return;
    }
    if (B.isSinglePoint() && asConstFloat(B.Min, &DivisorFloat) &&
        DivisorFloat != 0.0) {
      if (DivisorFloat > 0) {
        Result.Min = A.hasLowerBound() ? A.Min / B.Min : Expr();
        Result.Max = A.hasUpperBound() ? A.Max / B.Min : Expr();
      } else {
        Result.Min = A.hasUpperBound() ? A.Max / B.Min : Expr();
        Result.Max = A.hasLowerBound() ? A.Min / B.Min : Expr();
      }
      return;
    }
    if (A.isSinglePoint() && B.isSinglePoint()) {
      Result = Interval::single(A.Min / B.Min);
      return;
    }
    Result = Interval::everything();
  }

  void visit(const Mod *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    if (A.isSinglePoint() && B.isSinglePoint()) {
      Result = Interval::single(A.Min % B.Min);
      return;
    }
    // Floor-mod by a positive bounded divisor lies in [0, Bmax-1].
    if (B.hasUpperBound()) {
      Result = Interval(makeZero(Op->NodeType),
                        B.Max - makeOne(Op->NodeType));
      return;
    }
    Result = Interval::everything();
  }

  void visit(const Min *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    Result.Min = (A.hasLowerBound() && B.hasLowerBound()) ? min(A.Min, B.Min)
                                                          : Expr();
    if (A.hasUpperBound() && B.hasUpperBound())
      Result.Max = min(A.Max, B.Max);
    else
      Result.Max = A.hasUpperBound() ? A.Max : B.Max;
  }

  void visit(const Max *Op) override {
    Interval A = bounds(Op->A), B = bounds(Op->B);
    if (A.hasLowerBound() && B.hasLowerBound())
      Result.Min = max(A.Min, B.Min);
    else
      Result.Min = A.hasLowerBound() ? A.Min : B.Min;
    Result.Max = (A.hasUpperBound() && B.hasUpperBound()) ? max(A.Max, B.Max)
                                                          : Expr();
  }

  void visit(const EQ *Op) override { boolResult(Op->A, Op->B); }
  void visit(const NE *Op) override { boolResult(Op->A, Op->B); }
  void visit(const LT *Op) override { boolResult(Op->A, Op->B); }
  void visit(const LE *Op) override { boolResult(Op->A, Op->B); }
  void visit(const GT *Op) override { boolResult(Op->A, Op->B); }
  void visit(const GE *Op) override { boolResult(Op->A, Op->B); }
  void visit(const And *Op) override { boolResult(Op->A, Op->B); }
  void visit(const Or *Op) override { boolResult(Op->A, Op->B); }
  void visit(const Not *Op) override { boolResult(Op->A, Op->A); }

  void visit(const Select *Op) override {
    Interval T = bounds(Op->TrueValue), F = bounds(Op->FalseValue);
    Result = intervalUnion(T, F);
  }

  void visit(const Load *Op) override {
    // The loaded value is unknown; only its type bounds it.
    bounds(Op->Index); // still visit for completeness
    typeRange(Op->NodeType);
  }

  void visit(const Ramp *Op) override {
    Interval Base = bounds(Op->Base);
    Interval Stride = bounds(Op->Stride);
    Expr LastLane = makeConst(Op->Base.type(), int64_t(Op->Lanes - 1));
    if (Base.isBounded() && Stride.isBounded()) {
      Expr EndLo = Base.Min + Stride.Min * LastLane;
      Expr EndHi = Base.Max + Stride.Max * LastLane;
      Result.Min = min(Base.Min, min(EndLo, EndHi));
      Result.Max = max(Base.Max, max(EndLo, EndHi));
      return;
    }
    Result = Interval::everything();
  }

  void visit(const Broadcast *Op) override { Result = bounds(Op->Value); }

  void visit(const Call *Op) override {
    // Visit args (their bounds do not affect the call's value bounds).
    if (Op->CallKind == CallType::PureExtern) {
      externCallBounds(Op);
      return;
    }
    // Values produced by other stages or images: only the type bounds them.
    typeRange(Op->NodeType);
  }

  void visit(const Let *Op) override {
    Interval ValueBounds = bounds(Op->Value);
    ScopedBinding<Interval> Bind(*Inner, Op->Name,
                                 Ledger->shared(ValueBounds, Op->Name));
    Result = bounds(Op->Body);
  }

  /// The sharing ledger, owned by the walk's entry point.
  ExprLedger *Ledger;
  /// Inner bindings (lets crossed); either OwnInner or a caller's scope.
  Scope<Interval> *Inner;

private:
  void typeRange(Type T) {
    if (T.isHandle()) {
      Result = Interval::everything();
      return;
    }
    if (T.isFloat()) {
      // Floats are effectively unbounded for index purposes.
      Result = Interval::everything();
      return;
    }
    Result = Interval(makeTypeMin(T.element()), makeTypeMax(T.element()));
  }

  void boolResult(const Expr &A, const Expr &B) {
    bounds(A);
    bounds(B);
    Result = Interval(makeFalse(), makeTrue());
  }

  void scaleByConstPoint(const Interval &A, const Expr &Factor) {
    if (isPositiveConst(Factor)) {
      Result.Min = A.hasLowerBound() ? A.Min * Factor : Expr();
      Result.Max = A.hasUpperBound() ? A.Max * Factor : Expr();
      return;
    }
    if (isNegativeConst(Factor)) {
      Result.Min = A.hasUpperBound() ? A.Max * Factor : Expr();
      Result.Max = A.hasLowerBound() ? A.Min * Factor : Expr();
      return;
    }
    // Zero.
    Result = Interval::single(Factor);
  }

  void externCallBounds(const Call *Op) {
    const std::string &Name = Op->Name;
    if (Op->Args.size() == 1) {
      Interval A = bounds(Op->Args[0]);
      // Monotonically increasing functions map bounds through.
      if (Name == "sqrt" || Name == "exp" || Name == "log" ||
          Name == "floor" || Name == "ceil" || Name == "round") {
        if (A.isBounded()) {
          Result = Interval(
              Call::make(Op->NodeType, Name, {A.Min}, CallType::PureExtern),
              Call::make(Op->NodeType, Name, {A.Max}, CallType::PureExtern));
          return;
        }
        Result = Interval::everything();
        return;
      }
      if (Name == "sin" || Name == "cos") {
        Result = Interval(makeConst(Op->NodeType, -1.0),
                          makeConst(Op->NodeType, 1.0));
        return;
      }
    }
    Result = Interval::everything();
  }

  Scope<Interval> OwnInner;
  const Scope<Interval> &Outer;
  Interval Result;
};

/// Walks a statement or expression accumulating the boxes of every buffer
/// read (Call) and/or written (Provide), ranging loop variables over their
/// loop bounds.
class BoxesTouched : public IRVisitor {
public:
  BoxesTouched(const Scope<Interval> &VarScope, bool IncludeCalls,
               bool IncludeProvides, ExprLedger *Ledger)
      : Vars(VarScope), Ledger(Ledger), IncludeCalls(IncludeCalls),
        IncludeProvides(IncludeProvides) {}

  std::map<std::string, Box> Boxes;

  void visit(const Call *Op) override {
    IRVisitor::visit(Op); // visit args first: they may contain nested calls
    if (!IncludeCalls)
      return;
    if (Op->CallKind != CallType::Halide && Op->CallKind != CallType::Image)
      return;
    mergeBox(Op->Name, Op->Args);
  }

  void visit(const Provide *Op) override {
    IRVisitor::visit(Op);
    if (!IncludeProvides)
      return;
    mergeBox(Op->Name, Op->Args);
  }

  void visit(const Let *Op) override {
    Op->Value.accept(this);
    ScopedBinding<Interval> Bind(Inner, Op->Name, boundsOf(Op->Value, Op->Name));
    Op->Body.accept(this);
  }

  void visit(const LetStmt *Op) override {
    Op->Value.accept(this);
    ScopedBinding<Interval> Bind(Inner, Op->Name, boundsOf(Op->Value, Op->Name));
    Op->Body.accept(this);
  }

  void visit(const For *Op) override {
    Op->MinExpr.accept(this);
    Op->Extent.accept(this);
    BoundsVisitor BV(Vars, Ledger, &Inner);
    Interval MinB = BV.bounds(Op->MinExpr);
    Interval ExtB = BV.bounds(Op->Extent);
    Interval LoopRange;
    LoopRange.Min = MinB.Min;
    if (MinB.hasUpperBound() && ExtB.hasUpperBound())
      LoopRange.Max = MinB.Max + ExtB.Max - 1;
    // Every use of the loop variable in the body references the shared
    // range, not a private copy of it.
    ScopedBinding<Interval> Bind(Inner, Op->Name,
                                 Ledger->shared(LoopRange, Op->Name));
    Op->Body.accept(this);
  }

private:
  /// Bounds of a let value, computed once and routed through the ledger.
  /// The expression walk borrows this statement walk's inner scope so the
  /// bindings accumulated so far are visible without copying them.
  Interval boundsOf(const Expr &Value, const std::string &Hint) {
    BoundsVisitor BV(Vars, Ledger, &Inner);
    return Ledger->shared(BV.bounds(Value), Hint);
  }

  void mergeBox(const std::string &Name, const std::vector<Expr> &Args) {
    Box B(Args.size());
    BoundsVisitor BV(Vars, Ledger, &Inner);
    for (size_t I = 0; I < Args.size(); ++I)
      B[I] = BV.bounds(Args[I]);
    Boxes[Name].include(B);
  }

  const Scope<Interval> &Vars;
  Scope<Interval> Inner;
  ExprLedger *Ledger;
  bool IncludeCalls, IncludeProvides;
};

/// Makes a raw box self-contained when the caller did not supply a ledger.
Box finishBox(Box B, const ExprLedger &Local, const ExprLedger *Caller) {
  if (Caller)
    return B;
  for (Interval &I : B.Dims)
    I = Local.materialize(I);
  return B;
}

} // namespace

BoundsStatistics Bounds::statistics() {
  return detail::boundsSharingCounters();
}

void Bounds::resetStatistics() {
  detail::boundsSharingCounters() = BoundsStatistics();
}

Interval halide::boundsOfExprInScope(const Expr &E,
                                     const Scope<Interval> &VarScope,
                                     ExprLedger *Ledger) {
  ExprLedger Local;
  BoundsVisitor Visitor(VarScope, Ledger ? Ledger : &Local);
  Interval Result = Visitor.bounds(E);
  return Ledger ? Result : Local.materialize(Result);
}

Box halide::boxRequired(const Stmt &S, const std::string &Name,
                        const Scope<Interval> &VarScope, ExprLedger *Ledger) {
  ExprLedger Local;
  BoxesTouched Walker(VarScope, /*IncludeCalls=*/true,
                      /*IncludeProvides=*/false, Ledger ? Ledger : &Local);
  S.accept(&Walker);
  return finishBox(Walker.Boxes[Name], Local, Ledger);
}

Box halide::boxRequired(const Expr &E, const std::string &Name,
                        const Scope<Interval> &VarScope, ExprLedger *Ledger) {
  ExprLedger Local;
  BoxesTouched Walker(VarScope, /*IncludeCalls=*/true,
                      /*IncludeProvides=*/false, Ledger ? Ledger : &Local);
  E.accept(&Walker);
  return finishBox(Walker.Boxes[Name], Local, Ledger);
}

Box halide::boxProvided(const Stmt &S, const std::string &Name,
                        const Scope<Interval> &VarScope, ExprLedger *Ledger) {
  ExprLedger Local;
  BoxesTouched Walker(VarScope, /*IncludeCalls=*/false,
                      /*IncludeProvides=*/true, Ledger ? Ledger : &Local);
  S.accept(&Walker);
  return finishBox(Walker.Boxes[Name], Local, Ledger);
}

std::map<std::string, Box> halide::boxesTouched(
    const Stmt &S, const Scope<Interval> &VarScope, bool IncludeCalls,
    bool IncludeProvides, ExprLedger *Ledger) {
  ExprLedger Local;
  BoxesTouched Walker(VarScope, IncludeCalls, IncludeProvides,
                      Ledger ? Ledger : &Local);
  S.accept(&Walker);
  std::map<std::string, Box> Result = std::move(Walker.Boxes);
  if (!Ledger)
    for (auto &[BoxName, B] : Result)
      B = finishBox(std::move(B), Local, nullptr);
  return Result;
}
