//===-- analysis/CallGraph.cpp -------------------------------------------------=//

#include "analysis/CallGraph.h"
#include "ir/IREquality.h"
#include "ir/IRVisitor.h"

#include <algorithm>
#include <set>

using namespace halide;

namespace {

/// Collects the names of Halide calls (and optionally image calls) in an
/// expression.
class CallCollector : public IRVisitor {
public:
  std::set<std::string> FuncCalls;
  std::set<std::string> ImageCalls;
  /// All distinct argument vectors per callee (for stencil counting).
  std::map<std::string, std::vector<std::vector<Expr>>> CallArgs;

  void visit(const Call *Op) override {
    IRVisitor::visit(Op);
    if (Op->CallKind == CallType::Halide) {
      FuncCalls.insert(Op->Name);
      recordArgs(Op);
    } else if (Op->CallKind == CallType::Image) {
      ImageCalls.insert(Op->Name);
      recordArgs(Op);
    }
  }

private:
  void recordArgs(const Call *Op) {
    auto &Seen = CallArgs[Op->Name];
    for (const auto &Existing : Seen) {
      if (Existing.size() != Op->Args.size())
        continue;
      bool Same = true;
      for (size_t I = 0; I < Existing.size() && Same; ++I)
        Same = equal(Existing[I], Op->Args[I]);
      if (Same)
        return;
    }
    Seen.push_back(Op->Args);
  }
};

void collectFromFunction(const Function &F, CallCollector *Collector) {
  if (F.hasPureDefinition())
    F.value().accept(Collector);
  for (const UpdateDefinition &U : F.updates()) {
    U.Value.accept(Collector);
    for (const Expr &Arg : U.Args)
      Arg.accept(Collector);
    for (const ReductionVariable &RV : U.RVars) {
      if (RV.Min.defined())
        RV.Min.accept(Collector);
      if (RV.Extent.defined())
        RV.Extent.accept(Collector);
    }
  }
}

void buildEnvHelper(const Function &F, std::map<std::string, Function> *Env) {
  if (Env->count(F.name()))
    return;
  (*Env)[F.name()] = F;
  CallCollector Collector;
  collectFromFunction(F, &Collector);
  for (const std::string &Callee : Collector.FuncCalls) {
    if (Callee == F.name())
      continue;
    Function G = Function::lookup(Callee);
    buildEnvHelper(G, Env);
  }
}

} // namespace

std::map<std::string, Function> halide::buildEnvironment(
    const Function &Output) {
  std::map<std::string, Function> Env;
  buildEnvHelper(Output, &Env);
  return Env;
}

std::vector<std::string> halide::directCallees(const Function &F) {
  CallCollector Collector;
  collectFromFunction(F, &Collector);
  std::vector<std::string> Result;
  for (const std::string &Name : Collector.FuncCalls)
    if (Name != F.name())
      Result.push_back(Name);
  return Result;
}

std::map<std::string, int> halide::calleeSiteCounts(const Function &F) {
  CallCollector Collector;
  collectFromFunction(F, &Collector);
  std::map<std::string, int> Counts;
  for (const auto &[Callee, ArgSets] : Collector.CallArgs)
    if (Collector.FuncCalls.count(Callee) && Callee != F.name())
      Counts[Callee] = int(ArgSets.size());
  return Counts;
}

namespace {

void topoVisit(const std::string &Name,
               const std::map<std::string, Function> &Env,
               std::set<std::string> *Visited, std::set<std::string> *OnStack,
               std::vector<std::string> *Order) {
  if (Visited->count(Name))
    return;
  internal_assert(!OnStack->count(Name))
      << "cycle in pipeline call graph through " << Name;
  OnStack->insert(Name);
  auto It = Env.find(Name);
  internal_assert(It != Env.end()) << "function " << Name
                                   << " missing from environment";
  for (const std::string &Callee : directCallees(It->second))
    topoVisit(Callee, Env, Visited, OnStack, Order);
  OnStack->erase(Name);
  Visited->insert(Name);
  Order->push_back(Name);
}

} // namespace

std::vector<std::string> halide::realizationOrder(
    const Function &Output, const std::map<std::string, Function> &Env) {
  std::vector<std::string> Order;
  std::set<std::string> Visited, OnStack;
  topoVisit(Output.name(), Env, &Visited, &OnStack, &Order);
  return Order;
}

std::vector<std::string> halide::inputImages(const Function &Output) {
  std::map<std::string, Function> Env = buildEnvironment(Output);
  std::set<std::string> Images;
  for (const auto &[Name, F] : Env) {
    CallCollector Collector;
    collectFromFunction(F, &Collector);
    Images.insert(Collector.ImageCalls.begin(), Collector.ImageCalls.end());
  }
  return std::vector<std::string>(Images.begin(), Images.end());
}

int halide::countStencils(const Function &Output) {
  std::map<std::string, Function> Env = buildEnvironment(Output);
  int Stencils = 0;
  for (const auto &[Name, F] : Env) {
    CallCollector Collector;
    collectFromFunction(F, &Collector);
    bool IsStencil = false;
    for (const auto &[Callee, ArgSets] : Collector.CallArgs)
      if (ArgSets.size() > 1)
        IsStencil = true;
    if (IsStencil)
      ++Stencils;
  }
  return Stencils;
}
