//===-- analysis/CallGraph.h - Pipeline environment & order -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the environment of all Functions reachable from a pipeline's
/// output and a realization order (reverse topological: producers before
/// consumers). Lowering walks this order from the output inward (paper
/// section 4.1); the autotuner walks it to enumerate schedules.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_ANALYSIS_CALLGRAPH_H
#define HALIDE_ANALYSIS_CALLGRAPH_H

#include "lang/Function.h"

#include <map>
#include <string>
#include <vector>

namespace halide {

/// All functions reachable from \p Output (including Output), keyed by name.
std::map<std::string, Function> buildEnvironment(const Function &Output);

/// Producers-before-consumers order over the environment; Output is last.
/// Asserts the call graph is acyclic.
std::vector<std::string> realizationOrder(
    const Function &Output, const std::map<std::string, Function> &Env);

/// Names of the Funcs (CallType::Halide) called directly by \p F's
/// definitions (pure and updates), excluding itself.
std::vector<std::string> directCallees(const Function &F);

/// Number of distinct call sites (distinct argument vectors) per callee in
/// \p F's definitions. A callee consumed at a single site is pointwise:
/// inlining it into F duplicates no work, whereas inlining a stage read
/// through a multi-point stencil multiplies its cost by the site count
/// (and chains of such inlinings compound exponentially, e.g. across an
/// image pyramid's downsample stages).
std::map<std::string, int> calleeSiteCounts(const Function &F);

/// Names of input images (CallType::Image) referenced anywhere in the
/// pipeline rooted at \p Output.
std::vector<std::string> inputImages(const Function &Output);

/// Counts the stencil stages of a pipeline: stages that read a neighborhood
/// (more than one distinct point) of at least one producer. Reproduces the
/// "# stencils" column of the paper's Figure 6.
int countStencils(const Function &Output);

} // namespace halide

#endif // HALIDE_ANALYSIS_CALLGRAPH_H
