//===-- examples/interpolate.cpp - Pyramid compositing -------------------------===//
//
// Multi-scale interpolation of sparse premultiplied-alpha data through an
// image pyramid (the paper's "interpolate" app): dependence propagates
// globally across the image through local resampling stencils.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "examples/ExampleUtils.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;
using namespace halide::examples;

int main() {
  const int W = 512, H = 384;
  App A = makeInterpolateApp();

  ParamBindings Params = A.MakeInputs(W, H);
  Buffer<float> Out(W, H, 3);
  Params.bind(A.Output.name(), Out);

  A.ScheduleBreadthFirst();
  double BfMs = benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);
  A.ScheduleTuned();
  double TunedMs =
      benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);
  std::printf("multi-scale interpolation %dx%d\n", W, H);
  std::printf("  breadth-first: %8.2f ms\n", BfMs);
  std::printf("  tuned:         %8.2f ms (%.2fx)\n", TunedMs, BfMs / TunedMs);

  Buffer<uint8_t> View(W, H);
  View.fill([&](int X, int Y) {
    float V = Out(X, Y, 0);
    V = V < 0 ? 0 : (V > 1 ? 1 : V);
    return int(V * 255.0f);
  });
  writePgm(View, "interpolate.pgm");
  return 0;
}
