//===-- examples/camera_pipe.cpp - Raw to RGB ----------------------------------===//
//
// The camera pipeline: deinterleave, demosaic through interleaved stencils,
// color correct, and tone-curve via a LUT — the long-chain fusion workload
// of the paper's evaluation. Writes the developed RGB image as PPM.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "examples/ExampleUtils.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;
using namespace halide::examples;

int main() {
  const int W = 768, H = 512;
  App A = makeCameraPipeApp();

  ParamBindings Params = A.MakeInputs(W, H);
  Buffer<uint8_t> Out(W, H, 3);
  Params.bind(A.Output.name(), Out);

  A.ScheduleBreadthFirst();
  double BfMs = benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);
  A.ScheduleTuned();
  double TunedMs =
      benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);
  std::printf("camera pipe %dx%d raw -> RGB\n", W, H);
  std::printf("  breadth-first: %8.2f ms\n", BfMs);
  std::printf("  tuned (fused strips, vectorized): %8.2f ms (%.2fx)\n",
              TunedMs, BfMs / TunedMs);

  writePpm(Out, "camera_pipe.ppm");
  return 0;
}
