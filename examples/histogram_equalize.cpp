//===-- examples/histogram_equalize.cpp - Reductions in action -----------------===//
//
// The histogram-equalization pipeline from paper section 2: a scattering
// reduction, a recursive scan, and a data-dependent gather — the parts of
// the language beyond pure stencils.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "examples/ExampleUtils.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;
using namespace halide::examples;

int main() {
  const int W = 640, H = 480;
  App A = makeHistogramEqualizeApp();

  ParamBindings Params = A.MakeInputs(W, H);
  Buffer<uint8_t> Out(W, H);
  Params.bind(A.Output.name(), Out);

  A.ScheduleTuned();
  auto CP = Pipeline(A.Output).compile(Target::jit());
  double Ms = benchmarkMs(*CP, Params, 5);
  std::printf("histogram equalization %dx%d: %.3f ms/frame\n", W, H, Ms);

  // Basic sanity: the output should span (nearly) the full dynamic range.
  int MinV = 255, MaxV = 0;
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      MinV = std::min<int>(MinV, Out(X, Y));
      MaxV = std::max<int>(MaxV, Out(X, Y));
    }
  std::printf("output range after equalization: [%d, %d]\n", MinV, MaxV);
  writePgm(Out, "histogram_equalize.pgm");
  return 0;
}
