//===-- examples/quickstart.cpp - Your first pipeline ---------------------===//
//
// The paper's running example (sections 2 and 3.1): a separable 3x3 box
// blur written as two pure functions, then scheduled four different ways to
// walk the locality / parallelism / redundant-recomputation tradeoff space.
//
// Execution uses the unified Target/compile/realize API: bind inputs once
// with ImageParam::set, pick a Target (interpreter or JIT), and realize —
// Pipeline caches the compiled artifact under a schedule fingerprint, so
// re-realizing an unchanged schedule pays zero compile cost per frame.
//
//===----------------------------------------------------------------------===//

#include "examples/ExampleUtils.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;
using namespace halide::examples;

int main() {
  const int W = 1536, H = 1024;

  // --- The algorithm (what to compute) -----------------------------------
  ImageParam In(UInt(8), 2, "input");
  Var x("x"), y("y");
  auto InC = [&](Expr X, Expr Y) {
    return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                             clamp(Y, 0, In.height() - 1)));
  };
  Func Blurx("blurx"), Blur("blur_quickstart");
  Blurx(x, y) = cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
  Blur(x, y) = cast(UInt(8),
                    (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);

  // Input image: a gradient with some structure, bound once — realize()
  // resolves it from the ImageParam on every run.
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X * X / 97 + Y * 3) % 256; });
  In.set(Input);
  Buffer<uint8_t> Output(W, H);

  // --- The schedules (how to compute it) ---------------------------------
  struct Variant {
    const char *Name;
    std::function<void()> Apply;
  };
  Function BlurFn = Blur.function(), BlurxFn = Blurx.function();
  auto Reset = [&]() {
    BlurFn.resetSchedule();
    BlurxFn.resetSchedule();
  };
  Variant Variants[] = {
      {"breadth-first (compute_root)",
       [&] {
         Reset();
         Blurx.computeRoot();
       }},
      {"total fusion (inline)", [&] { Reset(); }},
      {"sliding window (store_root, compute_at y)",
       [&] {
         Reset();
         Blurx.storeRoot().computeAt(Blur, y);
       }},
      {"tiles + vectorize + parallel",
       [&] {
         Reset();
         Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
         Blur.tile(TileSpec(x, y).outer(xo, yo).inner(xi, yi).factors(64, 32))
             .vectorize(xi, 8)
             .parallel(yo);
         Blurx.computeAt(Blur, xo).vectorize(x, 8);
       }},
  };

  std::printf("Two-stage blur, %dx%d. One algorithm, four schedules:\n\n",
              W, H);
  Pipeline Pipe(Blur);
  for (const Variant &V : Variants) {
    V.Apply();
    // compile() lowers with the schedule just applied and JIT-compiles via
    // the host C compiler; an unchanged schedule would come from the cache.
    std::shared_ptr<const Executable> Exe = Pipe.compile(Target::jit());
    ParamBindings Params;
    Params.bind("input", Input);
    Params.bind(Blur.name(), Output);
    double Ms = benchmarkMs(*Exe, Params, 5);
    std::printf("  %-45s %8.3f ms/frame\n", V.Name, Ms);
  }

  // Single frames go through realize(): pick the backend per call.
  Pipe.realize(Output, ParamBindings(), Target::jit());

  // Keep the last (tiled) result.
  writePgm(Output, "quickstart_blur.pgm");
  std::printf("\nTo see the loop nest a schedule synthesizes, print\n"
              "Pipeline(blur).loweredText() — try it!\n");
  return 0;
}
