//===-- examples/bilateral_grid.cpp - Edge-aware smoothing ---------------------===//
//
// The bilateral-grid app from the paper's evaluation: scattering reduction,
// grid blurs, and data-dependent trilinear slicing. Shows the CPU tuned
// schedule and the simulated-GPU schedule side by side.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "examples/ExampleUtils.h"
#include "metrics/ScheduleMetrics.h"
#include "runtime/GpuSim.h"

#include <cstdio>

using namespace halide;
using namespace halide::examples;

int main() {
  const int W = 512, H = 384;
  App A = makeBilateralGridApp();

  ParamBindings Params = A.MakeInputs(W, H);
  Buffer<float> Out(W, H);
  Params.bind(A.Output.name(), Out);

  A.ScheduleTuned();
  auto Cpu = Pipeline(A.Output).compile(Target::jit());
  double CpuMs = benchmarkMs(*Cpu, Params, 3);
  std::printf("bilateral grid %dx%d\n  tuned CPU schedule: %8.2f ms\n", W, H,
              CpuMs);

  gpuSim().resetStats();
  A.ScheduleGpu();
  auto Gpu = Pipeline(A.Output).compile(Target::gpuSim());
  double GpuMs = benchmarkMs(*Gpu, Params, 3);
  std::printf("  simulated-GPU schedule: %8.2f ms, %lld kernel launches "
              "(simulated device)\n",
              GpuMs, (long long)gpuSim().stats().KernelLaunches);

  Buffer<uint8_t> View(W, H);
  View.fill([&](int X, int Y) {
    float V = Out(X, Y);
    V = V < 0 ? 0 : (V > 1 ? 1 : V);
    return int(V * 255.0f);
  });
  writePgm(View, "bilateral_grid.pgm");
  return 0;
}
