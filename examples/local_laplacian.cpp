//===-- examples/local_laplacian.cpp - The paper's flagship app ----------------===//
//
// Runs the ~99-stage local Laplacian filter (paper Figure 1) with the
// breadth-first and tuned schedules and reports the speedup, demonstrating
// that schedule choice — not algorithm changes — drives the performance
// difference.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "apps/Apps.h"
#include "examples/ExampleUtils.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;
using namespace halide::examples;

int main() {
  const int W = 512, H = 384;
  App A = makeLocalLaplacianApp(/*Levels=*/6);

  std::map<std::string, Function> Env = buildEnvironment(A.Output.function());
  std::printf("local Laplacian filters: %zu stages in the pipeline graph\n",
              Env.size());

  ParamBindings Params = A.MakeInputs(W, H);
  Buffer<uint16_t> Out(W, H);
  Params.bind(A.Output.name(), Out);

  A.ScheduleBreadthFirst();
  auto Bf = Pipeline(A.Output).compile(Target::jit());
  double BfMs = benchmarkMs(*Bf, Params, 3);
  std::printf("  breadth-first schedule: %8.2f ms\n", BfMs);

  A.ScheduleTuned();
  auto Tuned = Pipeline(A.Output).compile(Target::jit());
  double TunedMs = benchmarkMs(*Tuned, Params, 3);
  std::printf("  tuned schedule:         %8.2f ms  (%.2fx)\n", TunedMs,
              BfMs / TunedMs);

  // Tone-map to 8 bits for viewing.
  Buffer<uint8_t> View(W, H);
  View.fill([&](int X, int Y) { return Out(X, Y) >> 8; });
  writePgm(View, "local_laplacian.pgm");
  return 0;
}
