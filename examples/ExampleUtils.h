//===-- examples/ExampleUtils.h - Shared example helpers --------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the runnable examples: PGM/PPM image writers and
/// a wall-clock timer, so each example can save its result and report a
/// frame time.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_EXAMPLES_EXAMPLEUTILS_H
#define HALIDE_EXAMPLES_EXAMPLEUTILS_H

#include "runtime/Buffer.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace halide {
namespace examples {

/// Writes a grayscale 8-bit image as binary PGM.
inline void writePgm(const Buffer<uint8_t> &Img, const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "could not open %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "P5\n%d %d\n255\n", Img.width(), Img.height());
  for (int Y = 0; Y < Img.height(); ++Y)
    for (int X = 0; X < Img.width(); ++X)
      std::fputc(Img(X, Y), F);
  std::fclose(F);
  std::printf("wrote %s (%dx%d)\n", Path.c_str(), Img.width(), Img.height());
}

/// Writes a 3-channel 8-bit image as binary PPM.
inline void writePpm(const Buffer<uint8_t> &Img, const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "could not open %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "P6\n%d %d\n255\n", Img.width(), Img.height());
  for (int Y = 0; Y < Img.height(); ++Y)
    for (int X = 0; X < Img.width(); ++X)
      for (int C = 0; C < 3; ++C)
        std::fputc(Img(X, Y, C), F);
  std::fclose(F);
  std::printf("wrote %s (%dx%d)\n", Path.c_str(), Img.width(), Img.height());
}

/// Milliseconds taken by one invocation of \p Work.
inline double timeOnceMs(const std::function<void()> &Work) {
  auto Start = std::chrono::steady_clock::now();
  Work();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace examples
} // namespace halide

#endif // HALIDE_EXAMPLES_EXAMPLEUTILS_H
